//! The single-node PLSH engine: static tables + delta tables + deletions.
//!
//! This is the per-node composite of Section 4/6: inserts are hashed once,
//! buffered in the insert-optimized [`DeltaTables`], and periodically merged
//! into the read-optimized [`StaticTables`] when the delta reaches a
//! fraction `η` of node capacity. Queries consult both structures and a
//! deletion bitvector, so answers always reflect every live point.
//!
//! The merge rebuilds the static structure from the stored sketches — the
//! paper shows (Section 6.2) that any merge algorithm is at most ~2.7×
//! cheaper than this rebuild, because both are bound by the memory traffic
//! of writing the combined tables.

use plsh_parallel::ThreadPool;

use crate::error::{PlshError, Result};
use crate::hash::{Hyperplanes, HyperplanesKind, SketchMatrix};
use crate::params::PlshParams;
use crate::query::{
    self, BatchStats, Neighbor, QueryContext, QueryScratch, QueryStats, QueryStrategy,
    ScratchPool,
};
use crate::sparse::{CrsMatrix, SparseVector};
use crate::table::{BuildStrategy, DeltaLayout, DeltaTables, StaticTables};

/// Configuration of a single PLSH node engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Validated LSH parameters.
    pub params: PlshParams,
    /// Node capacity `C` in points; inserts beyond this fail (Section 6).
    pub capacity: usize,
    /// Delta fraction `η` of capacity that triggers an automatic merge
    /// (paper: 0.1, chosen so worst-case queries stay within 1.5× static).
    pub eta: f64,
    /// Whether inserts trigger merges automatically at `η·C`.
    pub auto_merge: bool,
    /// Static construction algorithm (Figure 4 ablation).
    pub build_strategy: BuildStrategy,
    /// Query pipeline switches (Figure 5 ablation).
    pub query_strategy: QueryStrategy,
    /// Delta bin layout.
    pub delta_layout: DeltaLayout,
    /// Hyperplane storage (dense or on-the-fly).
    pub hyperplanes: HyperplanesKind,
    /// Vectorization-friendly hashing kernel (Figure 4 "+vectorization").
    pub vectorized_hashing: bool,
}

impl EngineConfig {
    /// Default configuration: all optimizations on, `η = 0.1`, auto-merge.
    pub fn new(params: PlshParams, capacity: usize) -> Self {
        Self {
            params,
            capacity,
            eta: 0.1,
            auto_merge: true,
            build_strategy: BuildStrategy::TwoLevelShared,
            query_strategy: QueryStrategy::optimized(),
            delta_layout: DeltaLayout::Direct,
            hyperplanes: HyperplanesKind::Dense,
            vectorized_hashing: true,
        }
    }

    /// Sets the delta fraction `η`.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Disables automatic merging (callers merge explicitly).
    pub fn manual_merge(mut self) -> Self {
        self.auto_merge = false;
        self
    }

    /// Overrides the build strategy.
    pub fn with_build_strategy(mut self, s: BuildStrategy) -> Self {
        self.build_strategy = s;
        self
    }

    /// Overrides the query strategy.
    pub fn with_query_strategy(mut self, s: QueryStrategy) -> Self {
        self.query_strategy = s;
        self
    }

    /// Overrides the delta layout.
    pub fn with_delta_layout(mut self, l: DeltaLayout) -> Self {
        self.delta_layout = l;
        self
    }

    /// Uses on-the-fly hyperplanes (no dense matrix).
    pub fn with_on_the_fly_hyperplanes(mut self) -> Self {
        self.hyperplanes = HyperplanesKind::OnTheFly;
        self
    }

    /// Selects the naive hashing kernel (ablation).
    pub fn with_naive_hashing(mut self) -> Self {
        self.vectorized_hashing = false;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(PlshError::InvalidParams("capacity must be > 0".into()));
        }
        if !(self.eta > 0.0 && self.eta <= 1.0) {
            return Err(PlshError::InvalidParams(format!(
                "eta must lie in (0, 1], got {}",
                self.eta
            )));
        }
        Ok(())
    }
}

/// Deletion tombstones: one bit per point id (Section 6.2).
#[derive(Debug, Clone)]
struct DeletionBitmap {
    words: Vec<u64>,
    count: usize,
}

impl DeletionBitmap {
    fn new(capacity: usize) -> Self {
        Self {
            words: vec![0u64; capacity.div_ceil(64)],
            count: 0,
        }
    }

    fn set(&mut self, id: u32) -> bool {
        let w = (id >> 6) as usize;
        let bit = 1u64 << (id & 63);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.count += 1;
        true
    }

    fn is_set(&self, id: u32) -> bool {
        self.words[(id >> 6) as usize] & (1u64 << (id & 63)) != 0
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }
}

/// Point and memory accounting for one engine.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct EngineStats {
    /// Total live + deleted points stored.
    pub total_points: usize,
    /// Points in the static tables.
    pub static_points: usize,
    /// Points buffered in the delta tables.
    pub delta_points: usize,
    /// Tombstoned points.
    pub deleted_points: usize,
    /// Merges performed so far.
    pub merges: u64,
    /// Bytes in static tables.
    pub static_table_bytes: usize,
    /// Bytes in delta bins.
    pub delta_table_bytes: usize,
    /// Bytes of stored sketches.
    pub sketch_bytes: usize,
    /// Bytes of the dense hyperplane matrix (0 when on-the-fly).
    pub hyperplane_bytes: usize,
}

/// A single-node PLSH engine.
pub struct Engine {
    config: EngineConfig,
    planes: Hyperplanes,
    data: CrsMatrix,
    sketches: SketchMatrix,
    static_len: usize,
    statics: Option<StaticTables>,
    delta: DeltaTables,
    deleted: DeletionBitmap,
    scratches: ScratchPool,
    merges: u64,
}

impl Engine {
    /// Creates an empty engine (hyperplanes are generated here).
    pub fn new(config: EngineConfig, pool: &ThreadPool) -> Result<Self> {
        config.validate()?;
        let p = &config.params;
        let planes = match config.hyperplanes {
            HyperplanesKind::Dense => {
                Hyperplanes::new_dense(p.dim(), p.num_hashes(), p.seed(), pool)
            }
            HyperplanesKind::OnTheFly => {
                Hyperplanes::new_on_the_fly(p.dim(), p.num_hashes(), p.seed())
            }
        };
        let scratches = ScratchPool::new(p.m(), p.half_bits(), p.dim());
        Ok(Self {
            data: CrsMatrix::with_capacity(p.dim(), config.capacity.min(1 << 20), 8),
            sketches: SketchMatrix::new(p.m(), p.half_bits()),
            static_len: 0,
            statics: None,
            delta: DeltaTables::new(p.m(), p.half_bits(), config.delta_layout),
            deleted: DeletionBitmap::new(config.capacity),
            scratches,
            merges: 0,
            planes,
            config,
        })
    }

    /// The engine's parameters.
    pub fn params(&self) -> &PlshParams {
        &self.config.params
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Total stored points (live + deleted).
    pub fn len(&self) -> usize {
        self.data.num_rows()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points currently in the static structure.
    pub fn static_len(&self) -> usize {
        self.static_len
    }

    /// Points currently buffered in the delta structure.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Node capacity `C`.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Remaining insert headroom.
    pub fn remaining_capacity(&self) -> usize {
        self.config.capacity - self.len()
    }

    /// The stored vector for point `id`.
    pub fn vector(&self, id: u32) -> SparseVector {
        self.data.row_vector(id)
    }

    /// Inserts one vector; returns its node-local id.
    pub fn insert(&mut self, v: SparseVector, pool: &ThreadPool) -> Result<u32> {
        Ok(self.insert_batch(std::slice::from_ref(&v), pool)?[0])
    }

    /// Inserts a batch of vectors (paper: streaming arrives in ~100 K-point
    /// chunks, Section 6.2); returns their ids.
    ///
    /// The batch is all-or-nothing with respect to capacity; dimension
    /// errors abort before any vector of the batch is applied.
    pub fn insert_batch(&mut self, vs: &[SparseVector], pool: &ThreadPool) -> Result<Vec<u32>> {
        if self.len() + vs.len() > self.config.capacity {
            return Err(PlshError::CapacityExceeded {
                capacity: self.config.capacity,
            });
        }
        for v in vs {
            if let Some(max) = v.max_index() {
                if max >= self.config.params.dim() {
                    return Err(PlshError::DimensionOutOfRange {
                        index: max,
                        dim: self.config.params.dim(),
                    });
                }
            }
        }
        let from = self.len();
        for v in vs {
            self.data.push(v).expect("dimensions validated above");
        }
        self.sketches.append_from(
            &self.data,
            &self.planes,
            from,
            pool,
            self.config.vectorized_hashing,
        );
        let ids: Vec<u32> = (from as u32..(from + vs.len()) as u32).collect();
        self.delta.insert_batch(&self.sketches, &ids, pool);
        if self.config.auto_merge && self.delta.len() as f64 >= self.config.eta * self.config.capacity as f64
        {
            self.merge_delta(pool);
        }
        Ok(ids)
    }

    /// Inserts everything from an iterator.
    pub fn extend<I>(&mut self, vs: I, pool: &ThreadPool) -> Result<Vec<u32>>
    where
        I: IntoIterator<Item = SparseVector>,
    {
        let vs: Vec<SparseVector> = vs.into_iter().collect();
        self.insert_batch(&vs, pool)
    }

    /// Merges the delta into the static structure by rebuilding the static
    /// tables over every stored point (Section 6.2).
    pub fn merge_delta(&mut self, pool: &ThreadPool) {
        let n = self.len();
        let statics =
            StaticTables::build_prefix(&self.sketches, n, self.config.build_strategy, pool);
        if self.config.query_strategy.huge_pages {
            statics.advise_huge_pages();
        }
        self.statics = Some(statics);
        self.static_len = n;
        self.delta.clear();
        self.merges += 1;
    }

    /// Tombstones a point; returns `false` if it was already deleted or out
    /// of range.
    pub fn delete(&mut self, id: u32) -> bool {
        if (id as usize) >= self.len() {
            return false;
        }
        self.deleted.set(id)
    }

    /// True iff `id` is tombstoned.
    pub fn is_deleted(&self, id: u32) -> bool {
        (id as usize) < self.len() && self.deleted.is_set(id)
    }

    /// Retires the node's entire contents (Section 6: the rolling window
    /// erases the oldest `M` nodes wholesale). Storage is retained.
    pub fn clear(&mut self) {
        self.data.clear();
        self.sketches.clear();
        self.statics = None;
        self.static_len = 0;
        self.delta.clear();
        self.deleted.clear();
    }

    fn ctx(&self) -> QueryContext<'_> {
        QueryContext {
            data: &self.data,
            planes: &self.planes,
            static_tables: self.statics.as_ref(),
            delta: if self.delta.is_empty() {
                None
            } else {
                Some(&self.delta)
            },
            deleted: if self.deleted.count == 0 {
                None
            } else {
                Some(&self.deleted.words)
            },
            m: self.config.params.m(),
            half_bits: self.config.params.half_bits(),
            radius: self.config.params.radius() as f32,
            strategy: self.config.query_strategy,
        }
    }

    /// Answers one query (single-threaded; `pool` reserved for signature
    /// symmetry with [`query_batch`](Self::query_batch)).
    pub fn query(&self, q: &SparseVector, _pool: &ThreadPool) -> Vec<Neighbor> {
        self.query_with_stats(q).0
    }

    /// Answers one query and returns its pipeline counters.
    pub fn query_with_stats(&self, q: &SparseVector) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratches.take(self.len());
        let r = query::execute_query(&self.ctx(), q, &mut scratch);
        self.scratches.put(scratch);
        r
    }

    /// Answers a batch of queries through the batched SIMD pipeline: Q1 is
    /// hashed for the whole batch first ([`crate::hash::SketchMatrix::sketch_batch`]),
    /// then Q2–Q4 fan out one work-stealing task per query.
    pub fn query_batch(
        &self,
        qs: &[SparseVector],
        pool: &ThreadPool,
    ) -> (Vec<Vec<Neighbor>>, BatchStats) {
        query::execute_batch_pipelined(&self.ctx(), qs, pool, &self.scratches)
    }

    /// Runs one query with an explicit strategy override (ablations).
    pub fn query_with_strategy(
        &self,
        q: &SparseVector,
        strategy: QueryStrategy,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut ctx = self.ctx();
        ctx.strategy = strategy;
        let mut scratch = self.scratches.take(self.len());
        let r = query::execute_query(&ctx, q, &mut scratch);
        self.scratches.put(scratch);
        r
    }

    /// Runs a query batch with an explicit strategy override (ablations).
    ///
    /// Uses the unbatched per-query pipeline, matching the paper's Figure 5
    /// protocol (the batched pipeline is an extra level on top; see
    /// [`query_batch`](Self::query_batch)).
    pub fn query_batch_with_strategy(
        &self,
        qs: &[SparseVector],
        strategy: QueryStrategy,
        pool: &ThreadPool,
    ) -> (Vec<Vec<Neighbor>>, BatchStats) {
        let mut ctx = self.ctx();
        ctx.strategy = strategy;
        query::execute_batch(&ctx, qs, pool, &self.scratches)
    }

    /// Answers an approximate k-nearest-neighbor query: the `k` closest
    /// points among everything the hash tables surface for `q`, ascending
    /// by distance (see [`query::execute_knn`]).
    pub fn query_knn(&self, q: &SparseVector, k: usize) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratches.take(self.len());
        let r = query::execute_knn(&self.ctx(), q, k, &mut scratch);
        self.scratches.put(scratch);
        r
    }

    /// Runs a query batch sequentially with per-phase timers (Figure 6).
    pub fn profile_query_batch(
        &self,
        qs: &[SparseVector],
    ) -> (query::QueryPhaseTimings, QueryStats) {
        let mut scratch = self.scratches.take(self.len());
        let r = query::profile_batch(&self.ctx(), qs, &mut scratch);
        self.scratches.put(scratch);
        r
    }

    /// Point/memory accounting.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            total_points: self.len(),
            static_points: self.static_len,
            delta_points: self.delta.len(),
            deleted_points: self.deleted.count,
            merges: self.merges,
            static_table_bytes: self.statics.as_ref().map_or(0, StaticTables::memory_bytes),
            delta_table_bytes: self.delta.memory_bytes(),
            sketch_bytes: self.sketches.memory_bytes(),
            hyperplane_bytes: self.planes.memory_bytes(),
        }
    }

    /// A scratch suitable for external query drivers (tests, benches).
    pub fn make_scratch(&self) -> QueryScratch {
        self.scratches.take(self.len())
    }
}

/// Derives the largest delta fraction `η` keeping worst-case query time
/// within `slowdown` × the static query time (Section 6.3).
///
/// With static time `t_s` (all data static) and streaming time `t_d` (all
/// data in delta bins), the worst-case mixed time is
/// `(1−η)·t_s + η·t_d ≤ slowdown·t_s`, hence
/// `η ≤ (slowdown − 1)·t_s / (t_d − t_s)`. The paper plugs in 1.4 ms and
/// 6 ms with slowdown 1.5 to get η ≤ 0.15 and chooses 0.1.
pub fn eta_bound(static_time: f64, delta_time: f64, slowdown: f64) -> f64 {
    assert!(static_time > 0.0 && slowdown >= 1.0);
    if delta_time <= static_time {
        return 1.0; // delta is no slower; any fraction is fine
    }
    ((slowdown - 1.0) * static_time / (delta_time - static_time)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn params(dim: u32) -> PlshParams {
        PlshParams::builder(dim)
            .k(6)
            .m(6)
            .radius(0.9)
            .delta(0.1)
            .seed(99)
            .build()
            .unwrap()
    }

    fn random_vec(rng: &mut SplitMix64, dim: u32) -> SparseVector {
        let a = rng.next_below(dim as u64) as u32;
        let b = (a + 1 + rng.next_below(dim as u64 - 1) as u32) % dim;
        SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
    }

    #[test]
    fn insert_query_roundtrip_without_merge() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(1);
        let vs: Vec<SparseVector> = (0..50).map(|_| random_vec(&mut rng, 64)).collect();
        let ids = e.insert_batch(&vs, &pool).unwrap();
        assert_eq!(ids, (0..50).collect::<Vec<u32>>());
        assert_eq!(e.static_len(), 0);
        assert_eq!(e.delta_len(), 50);
        // Every point must find itself purely through the delta tables.
        for (i, v) in vs.iter().enumerate() {
            let hits = e.query(v, &pool);
            assert!(
                hits.iter().any(|h| h.index == i as u32 && h.distance < 1e-3),
                "point {i} not found pre-merge"
            );
        }
    }

    #[test]
    fn merge_preserves_query_answers() {
        let pool = ThreadPool::new(2);
        let mut e = Engine::new(EngineConfig::new(params(64), 200).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(2);
        let vs: Vec<SparseVector> = (0..120).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();

        let pre: Vec<Vec<u32>> = vs
            .iter()
            .map(|v| {
                let mut hits: Vec<u32> = e.query(v, &pool).iter().map(|h| h.index).collect();
                hits.sort_unstable();
                hits
            })
            .collect();
        e.merge_delta(&pool);
        assert_eq!(e.static_len(), 120);
        assert_eq!(e.delta_len(), 0);
        for (v, expect) in vs.iter().zip(&pre) {
            let mut hits: Vec<u32> = e.query(v, &pool).iter().map(|h| h.index).collect();
            hits.sort_unstable();
            assert_eq!(&hits, expect, "merge must not change answers");
        }
    }

    #[test]
    fn mixed_static_and_delta_queries() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 300).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(3);
        let first: Vec<SparseVector> = (0..80).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&first, &pool).unwrap();
        e.merge_delta(&pool);
        let second: Vec<SparseVector> = (0..40).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&second, &pool).unwrap();
        assert_eq!(e.static_len(), 80);
        assert_eq!(e.delta_len(), 40);
        // Old and new points are both findable.
        for (i, v) in first.iter().enumerate() {
            assert!(e.query(v, &pool).iter().any(|h| h.index == i as u32));
        }
        for (i, v) in second.iter().enumerate() {
            let id = 80 + i as u32;
            assert!(e.query(v, &pool).iter().any(|h| h.index == id));
        }
    }

    #[test]
    fn auto_merge_fires_at_eta() {
        let pool = ThreadPool::new(1);
        let config = EngineConfig::new(params(64), 100).with_eta(0.1);
        let mut e = Engine::new(config, &pool).unwrap();
        let mut rng = SplitMix64::new(4);
        for i in 0..10 {
            e.insert(random_vec(&mut rng, 64), &pool).unwrap();
            let _ = i;
        }
        // 10 points = eta * capacity, so a merge must have fired.
        assert!(e.stats().merges >= 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.static_len(), 10);
    }

    #[test]
    fn capacity_is_enforced_atomically() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 10), &pool).unwrap();
        let mut rng = SplitMix64::new(5);
        let vs: Vec<SparseVector> = (0..11).map(|_| random_vec(&mut rng, 64)).collect();
        assert_eq!(
            e.insert_batch(&vs, &pool).unwrap_err(),
            PlshError::CapacityExceeded { capacity: 10 }
        );
        assert_eq!(e.len(), 0, "failed batch must not be partially applied");
        e.insert_batch(&vs[..10], &pool).unwrap();
        assert_eq!(e.remaining_capacity(), 0);
        assert!(e.insert(vs[10].clone(), &pool).is_err());
    }

    #[test]
    fn dimension_errors_abort_batch() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 10), &pool).unwrap();
        let good = SparseVector::unit(vec![(0, 1.0)]).unwrap();
        let bad = SparseVector::unit(vec![(64, 1.0)]).unwrap();
        let err = e.insert_batch(&[good, bad], &pool).unwrap_err();
        assert_eq!(err, PlshError::DimensionOutOfRange { index: 64, dim: 64 });
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn delete_hides_points_from_queries() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let v = SparseVector::unit(vec![(3, 1.0), (9, 0.5)]).unwrap();
        let id = e.insert(v.clone(), &pool).unwrap();
        assert!(e.query(&v, &pool).iter().any(|h| h.index == id));
        assert!(e.delete(id));
        assert!(!e.delete(id), "double delete returns false");
        assert!(e.is_deleted(id));
        assert!(!e.query(&v, &pool).iter().any(|h| h.index == id));
        // Deletion also filters static-path answers after a merge.
        e.merge_delta(&pool);
        assert!(!e.query(&v, &pool).iter().any(|h| h.index == id));
        assert!(!e.delete(55), "out of range delete is rejected");
    }

    #[test]
    fn clear_retires_everything() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 50), &pool).unwrap();
        let mut rng = SplitMix64::new(6);
        let vs: Vec<SparseVector> = (0..20).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        e.delete(3);
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.static_len(), 0);
        assert_eq!(e.stats().deleted_points, 0);
        assert!(e.query(&vs[0], &pool).is_empty());
        // Node is reusable after retirement.
        let id = e.insert(vs[0].clone(), &pool).unwrap();
        assert_eq!(id, 0);
        assert!(e.query(&vs[0], &pool).iter().any(|h| h.index == 0));
    }

    #[test]
    fn batch_query_agrees_with_singles() {
        let pool = ThreadPool::new(2);
        let mut e = Engine::new(EngineConfig::new(params(64), 200), &pool).unwrap();
        let mut rng = SplitMix64::new(7);
        let vs: Vec<SparseVector> = (0..100).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        let queries = &vs[..25];
        let (batch, stats) = e.query_batch(queries, &pool);
        assert_eq!(stats.queries, 25);
        for (q, got) in queries.iter().zip(&batch) {
            let mut got: Vec<u32> = got.iter().map(|h| h.index).collect();
            got.sort_unstable();
            let mut single: Vec<u32> = e.query(q, &pool).iter().map(|h| h.index).collect();
            single.sort_unstable();
            assert_eq!(got, single);
        }
    }

    #[test]
    fn on_the_fly_hyperplanes_match_dense() {
        let pool = ThreadPool::new(1);
        let mut rng = SplitMix64::new(8);
        let vs: Vec<SparseVector> = (0..60).map(|_| random_vec(&mut rng, 64)).collect();
        let mut dense =
            Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let mut lazy = Engine::new(
            EngineConfig::new(params(64), 100)
                .manual_merge()
                .with_on_the_fly_hyperplanes(),
            &pool,
        )
        .unwrap();
        dense.insert_batch(&vs, &pool).unwrap();
        lazy.insert_batch(&vs, &pool).unwrap();
        dense.merge_delta(&pool);
        lazy.merge_delta(&pool);
        for v in &vs {
            let mut a: Vec<u32> = dense.query(v, &pool).iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = lazy.query(v, &pool).iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn eta_bound_matches_paper_example() {
        // Static 1.4 ms, streaming 6 ms, slowdown 1.5 → η ≤ ~0.152.
        let eta = eta_bound(1.4, 6.0, 1.5);
        assert!((0.14..0.17).contains(&eta), "{eta}");
        // Delta faster than static → unbounded (clamped to 1).
        assert_eq!(eta_bound(2.0, 1.0, 1.5), 1.0);
    }

    #[test]
    fn knn_returns_sorted_top_k() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 200).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(12);
        let vs: Vec<SparseVector> = (0..120).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        e.merge_delta(&pool);
        for qid in [0u32, 33, 119] {
            let q = &vs[qid as usize];
            let (hits, stats) = e.query_knn(q, 5);
            assert!(hits.len() <= 5);
            assert!(!hits.is_empty());
            // Ascending by distance; self first (distance ~0).
            assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
            assert_eq!(hits[0].index, qid);
            assert!(hits[0].distance < 1e-3);
            // The k-NN answer is a prefix of the full candidate ranking.
            let (full, _) = e.query_knn(q, usize::MAX);
            assert_eq!(&full[..hits.len()], &hits[..]);
            assert!(stats.unique_candidates >= hits.len() as u64);
        }
    }

    #[test]
    fn knn_skips_deleted_points() {
        let pool = ThreadPool::new(1);
        let mut e = Engine::new(EngineConfig::new(params(64), 50).manual_merge(), &pool).unwrap();
        let v = SparseVector::unit(vec![(1, 1.0), (2, 1.0)]).unwrap();
        let w = SparseVector::unit(vec![(1, 1.0), (2, 0.9)]).unwrap();
        let a = e.insert(v.clone(), &pool).unwrap();
        let b = e.insert(w, &pool).unwrap();
        e.delete(a);
        let (hits, _) = e.query_knn(&v, 2);
        assert!(hits.iter().all(|h| h.index != a));
        assert!(hits.iter().any(|h| h.index == b));
    }

    #[test]
    fn config_validation() {
        let pool = ThreadPool::new(1);
        assert!(Engine::new(EngineConfig::new(params(64), 0), &pool).is_err());
        assert!(Engine::new(EngineConfig::new(params(64), 10).with_eta(0.0), &pool).is_err());
        assert!(Engine::new(EngineConfig::new(params(64), 10).with_eta(1.5), &pool).is_err());
    }
}
