//! The single-node PLSH engine: epoch-swapped static tables + sealed delta
//! generations + deletions.
//!
//! This is the per-node composite of Section 4/6, rebuilt as a *concurrent
//! streaming* subsystem so queries run while the firehose streams in:
//!
//! * **Readers pin epochs.** Every query pins one immutable
//!   `EngineView` — the static tables, the consolidated static corpus,
//!   and the list of sealed [`DeltaGeneration`]s — through a lock-free
//!   [`EpochPtr`]. All query entry points take `&self`; a pinned view
//!   never changes, so a query can never observe a half-merged state.
//! * **Writers seal generations.** Inserts are hashed once and buffered in
//!   the *open* generation (serialized by a write mutex). Sealing wraps
//!   the generation in an `Arc` and publishes it with one epoch swap — a
//!   pointer move, no copying. By default every `insert_batch` seals, so
//!   points become visible the moment the call returns.
//! * **Merges happen off to the side.** [`merge_delta`](Engine::merge_delta)
//!   consolidates the sealed generations into the next static epoch —
//!   bucket-merging the previous epoch's entry runs with radix-partitioned
//!   generation entries ([`StaticTables::merge_generations`]) — while
//!   queries and inserts keep running against the current epoch, then
//!   publishes the result with a single swap. Deletion tombstones are
//!   *purged* during the rebuild: tombstoned ids are dropped from every
//!   bucket and their bitvector bits reclaimed.
//!
//! The paper's cost argument still holds (Section 6.2: any merge is at
//! most ~2.7× cheaper than a rebuild because both are bound by the memory
//! traffic of writing the combined tables) — the bucket merge sits on the
//! cheap side of that window and, unlike the rebuild, no longer needs
//! sketches for static points, so sketch storage is dropped at merge time.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use plsh_parallel::{EpochPtr, ThreadPool};

use crate::error::{PlshError, Result};
use crate::hash::{Hyperplanes, HyperplanesKind};
use crate::health::HealthReport;
use crate::params::PlshParams;
use crate::query::{
    self, BatchStats, Neighbor, QueryContext, QueryScratch, QueryStrategy, ScratchPool,
};
use crate::search::{
    rank_top_k, SearchBackend, SearchHit, SearchMode, SearchRequest, SearchResponse,
};
use crate::sparse::{CrsMatrix, SparseVector};
use crate::table::{DeltaGeneration, DeltaLayout, StaticTables};

/// Configuration of a single PLSH node engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Validated LSH parameters.
    pub params: PlshParams,
    /// Node capacity `C` in points; inserts beyond this fail (Section 6).
    pub capacity: usize,
    /// Delta fraction `η` of capacity that triggers an automatic merge
    /// (paper: 0.1, chosen so worst-case queries stay within 1.5× static).
    pub eta: f64,
    /// Whether inserts trigger merges automatically at `η·C`.
    pub auto_merge: bool,
    /// Query pipeline switches (Figure 5 ablation).
    pub query_strategy: QueryStrategy,
    /// Delta bin layout (per sealed generation).
    pub delta_layout: DeltaLayout,
    /// Hyperplane storage (dense or on-the-fly).
    pub hyperplanes: HyperplanesKind,
    /// Vectorization-friendly hashing kernel (Figure 4 "+vectorization").
    pub vectorized_hashing: bool,
    /// Minimum open-generation size before `insert_batch` auto-seals.
    ///
    /// The default of 1 seals after every batch, so freshly inserted
    /// points are query-visible as soon as the insert returns. Raising it
    /// lets several small batches coalesce into one generation (fewer
    /// probes per query); the coalesced points stay invisible until the
    /// threshold is reached or [`Engine::seal`] is called.
    pub seal_min_points: usize,
    /// Chunking and back-off knobs of [`Engine::merge_delta_paced`].
    pub merge_pacing: MergePacing,
    /// Sliding-window retirement: when set, every insert advances a
    /// retire-by-age watermark so only the newest window stays live (see
    /// [`WindowSpec`]). `None` (the default) keeps every point until it is
    /// explicitly deleted.
    pub window: Option<WindowSpec>,
}

/// A sliding-window policy: how much history stays live.
///
/// Retirement is a single **range tombstone** — a watermark global id
/// below which every point is dead — rather than per-id bitmap bits.
/// Queries filter the watermark for free alongside the deletion bitmap;
/// the next merge *compacts* the window by rebasing the static structure
/// at the watermark, reclaiming rows, bucket entries, and bitmap words in
/// the same radix-partition pass that already purges tombstones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep the newest `n` documents live.
    Docs(u32),
    /// Keep documents inserted within the trailing duration live. Ages are
    /// measured from insert time on this node; after a restart the clock
    /// restarts at recovery (the recovered watermark is preserved, so the
    /// window never moves backwards).
    Duration(Duration),
}

/// Pacing knobs of the cooperative (stepped) merge: how much work one
/// uninterruptible slice performs, and how long the merge backs off when
/// queries are in flight.
///
/// The stepped build runs the same state machine as the monolithic
/// [`StaticTables::merge_generations`] — identical output — but between
/// slices it reads the engine's query-pressure gauge and sleeps while
/// queries are active, so a merge never monopolizes memory bandwidth
/// against the latency-sensitive read path.
#[derive(Debug, Clone, Copy)]
pub struct MergePacing {
    /// Max buckets one slice of a bucket-addressed phase (previous-epoch
    /// count/scatter) touches before re-checking query pressure.
    pub step_buckets: usize,
    /// Max generation rows one slice of a row-addressed phase (radix
    /// count / scatter of sealed generations) processes per check.
    pub step_rows: usize,
    /// How long the merge sleeps after a slice when queries are active.
    /// `Duration::ZERO` disables the back-off (steps still run bounded).
    pub yield_sleep: Duration,
}

impl Default for MergePacing {
    fn default() -> Self {
        Self {
            // ~16 KB of bucket cursor work / ~1 generation chunk per
            // slice: big enough to amortize the pressure check, small
            // enough that a query arriving mid-merge waits at most one
            // slice (tens of microseconds) for the CPU.
            step_buckets: 4096,
            step_rows: 4096,
            yield_sleep: Duration::from_micros(200),
        }
    }
}

impl EngineConfig {
    /// Default configuration: all optimizations on, `η = 0.1`, auto-merge,
    /// seal every batch.
    pub fn new(params: PlshParams, capacity: usize) -> Self {
        Self {
            params,
            capacity,
            eta: 0.1,
            auto_merge: true,
            query_strategy: QueryStrategy::optimized(),
            delta_layout: DeltaLayout::Adaptive,
            hyperplanes: HyperplanesKind::Dense,
            vectorized_hashing: true,
            seal_min_points: 1,
            merge_pacing: MergePacing::default(),
            window: None,
        }
    }

    /// Enables sliding-window retirement (see [`WindowSpec`]).
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the delta fraction `η`.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Disables automatic merging (callers merge explicitly).
    pub fn manual_merge(mut self) -> Self {
        self.auto_merge = false;
        self
    }

    /// Overrides the query strategy.
    pub fn with_query_strategy(mut self, s: QueryStrategy) -> Self {
        self.query_strategy = s;
        self
    }

    /// Overrides the delta layout.
    pub fn with_delta_layout(mut self, l: DeltaLayout) -> Self {
        self.delta_layout = l;
        self
    }

    /// Sets the minimum open-generation size before auto-sealing.
    pub fn with_seal_min_points(mut self, points: usize) -> Self {
        self.seal_min_points = points.max(1);
        self
    }

    /// Overrides the cooperative-merge pacing knobs.
    pub fn with_merge_pacing(mut self, pacing: MergePacing) -> Self {
        self.merge_pacing = pacing;
        self
    }

    /// Uses on-the-fly hyperplanes (no dense matrix).
    pub fn with_on_the_fly_hyperplanes(mut self) -> Self {
        self.hyperplanes = HyperplanesKind::OnTheFly;
        self
    }

    /// Selects the naive hashing kernel (ablation).
    pub fn with_naive_hashing(mut self) -> Self {
        self.vectorized_hashing = false;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(PlshError::InvalidParams("capacity must be > 0".into()));
        }
        if !(self.eta > 0.0 && self.eta <= 1.0) {
            return Err(PlshError::InvalidParams(format!(
                "eta must lie in (0, 1], got {}",
                self.eta
            )));
        }
        match self.window {
            Some(WindowSpec::Docs(0)) => {
                return Err(PlshError::InvalidParams(
                    "window must keep at least one document".into(),
                ));
            }
            Some(WindowSpec::Docs(n)) if n as usize >= self.capacity => {
                // The resident span (window + un-merged delta + batch in
                // flight) must fit the capacity, so the window itself has
                // to leave headroom for the delta.
                return Err(PlshError::InvalidParams(format!(
                    "window of {n} docs must be smaller than the capacity ({}): the resident \
                     span also holds the un-merged delta",
                    self.capacity
                )));
            }
            Some(WindowSpec::Duration(d)) if d.is_zero() => {
                return Err(PlshError::InvalidParams(
                    "window duration must be positive".into(),
                ));
            }
            _ => {}
        }
        Ok(())
    }
}

/// Deletion tombstones: one bit per point id (Section 6.2), set atomically
/// so deletes land concurrently with lock-free queries.
///
/// The bitmap is shared by reference with every epoch published *until the
/// next merge*; a merge purges tombstoned ids from the rebuilt tables and
/// publishes a fresh bitmap with those bits reclaimed, while readers still
/// pinned on the old epoch keep the old bitmap (whose bits they still need
/// to filter the old buckets).
#[derive(Debug)]
struct DeletionBitmap {
    words: Vec<AtomicU64>,
    count: AtomicUsize,
    /// Global id bit 0 covers; always the epoch's `static_base`. A merge
    /// that compacts a retired window publishes a rebased copy, so the
    /// bitmap stays sized to the live span rather than the id lifetime.
    base: u32,
}

impl DeletionBitmap {
    fn new(base: u32, capacity: usize) -> Self {
        Self {
            words: (0..capacity.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicUsize::new(0),
            base,
        }
    }

    /// Sets the bit for `id` (must be `>= base`); returns `false` if it
    /// was already set.
    fn set(&self, id: u32) -> bool {
        let off = id - self.base;
        let bit = 1u64 << (off & 63);
        let prev = self.words[(off >> 6) as usize].fetch_or(bit, Ordering::Relaxed);
        if prev & bit != 0 {
            return false;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// True iff the bit for `id` is set; ids below `base` (retired and
    /// compacted away) report `false` — the watermark, not the bitmap,
    /// accounts for them.
    fn is_set(&self, id: u32) -> bool {
        if id < self.base {
            return false;
        }
        let off = id - self.base;
        self.words[(off >> 6) as usize].load(Ordering::Relaxed) & (1u64 << (off & 63)) != 0
    }

    fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Set ids in `[lo, limit)`, ascending (snapshot capture, manifest
    /// writes, live-point accounting).
    fn set_ids_in(&self, lo: u32, limit: u32) -> Vec<u32> {
        let mut ids = Vec::new();
        for (wi, word) in self.words.iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                let id = self.base + (wi * 64) as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                if id >= lo && id < limit {
                    ids.push(id);
                }
            }
        }
        ids
    }

    /// Set ids below `limit`, ascending.
    fn set_ids(&self, limit: u32) -> Vec<u32> {
        self.set_ids_in(0, limit)
    }

    /// Plain-integer snapshot of the words, covering ids
    /// `base..base + capacity` (the merge's purge decision).
    fn snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// A copy of this bitmap re-anchored at `new_base` (`>= base`) with
    /// the bits of `purged` ids reclaimed. Bits below `new_base` belong to
    /// compacted rows and are dropped wholesale.
    fn rebased_without(&self, purged: &[u32], new_base: u32) -> Self {
        debug_assert!(new_base >= self.base);
        let fresh = Self::new(new_base, self.words.len() * 64);
        for (wi, word) in self.words.iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                let id = self.base + (wi * 64) as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                if id >= new_base && purged.binary_search(&id).is_err() {
                    fresh.set(id);
                }
            }
        }
        fresh
    }
}

/// One published epoch: everything a query needs, immutable once stored.
struct EngineView {
    /// Rows of global ids `static_base..static_base + num_rows`,
    /// consolidated at the last merge.
    static_data: Arc<CrsMatrix>,
    /// Static tables over those rows (minus purged ids; entries are
    /// global ids).
    statics: Option<Arc<StaticTables>>,
    /// Sealed generations, ascending and contiguous from
    /// `static_base + static rows`.
    sealed: Vec<Arc<DeltaGeneration>>,
    /// Tombstone bits over `static_base..`; swapped for a purged (and,
    /// under a window, rebased) copy at each merge.
    deleted: Arc<DeletionBitmap>,
    /// One-past-the-end global id of the sealed prefix.
    visible_len: u32,
    /// Global id of `static_data` row 0 (0 unless a window compaction has
    /// retired a prefix).
    static_base: u32,
    /// Range tombstone: every id below this watermark is retired. Always
    /// `>= static_base`; rows in `static_base..retired_below` are dead but
    /// not yet compacted away (the next merge reclaims them).
    retired_below: u32,
}

impl EngineView {
    fn empty(dim: u32, capacity: usize, base: u32) -> Self {
        Self {
            static_data: Arc::new(CrsMatrix::new(dim)),
            statics: None,
            sealed: Vec::new(),
            deleted: Arc::new(DeletionBitmap::new(base, capacity)),
            visible_len: base,
            static_base: base,
            retired_below: base,
        }
    }

    fn with_sealed(prev: &EngineView, gen: Arc<DeltaGeneration>) -> Self {
        debug_assert_eq!(gen.base(), prev.visible_len);
        let visible_len = gen.end();
        let mut sealed = prev.sealed.clone();
        sealed.push(gen);
        Self {
            static_data: prev.static_data.clone(),
            statics: prev.statics.clone(),
            sealed,
            deleted: prev.deleted.clone(),
            visible_len,
            static_base: prev.static_base,
            retired_below: prev.retired_below,
        }
    }

    /// A structurally identical epoch with the retirement watermark
    /// advanced to `watermark` (a pointer-move publish, like sealing).
    fn with_watermark(prev: &EngineView, watermark: u32) -> Self {
        Self {
            static_data: prev.static_data.clone(),
            statics: prev.statics.clone(),
            sealed: prev.sealed.clone(),
            deleted: prev.deleted.clone(),
            visible_len: prev.visible_len,
            static_base: prev.static_base,
            retired_below: watermark,
        }
    }

    /// Rows resident in the static structure.
    fn static_len(&self) -> usize {
        self.static_data.num_rows()
    }

    /// One-past-the-end global id of the static structure.
    fn static_end(&self) -> u32 {
        self.static_base + self.static_data.num_rows() as u32
    }

    fn sealed_points(&self) -> usize {
        (self.visible_len - self.static_end()) as usize
    }

    /// Points a query against this epoch can touch (the scratch and
    /// candidate-bitvector sizing): the resident visible span.
    fn visible_span(&self) -> usize {
        (self.visible_len - self.static_base) as usize
    }
}

/// Mutable write-side state, serialized by the engine's write mutex.
struct WriteState {
    /// The generation currently accepting inserts (invisible to queries
    /// until sealed). `None` between seals.
    open: Option<DeltaGeneration>,
    /// Total ids assigned over the engine's lifetime (retired + static +
    /// sealed + open); ids are never reused.
    total: u32,
    /// Sorted global ids purged from static epochs by past merges. Their
    /// bitvector bits are reclaimed, they sit in no bucket, but their row
    /// slots remain so ids stay stable. Pruned below the window watermark
    /// at each compacting merge (retired ids need no per-id record).
    purged: Vec<u32>,
    /// The write-side copy of the retirement watermark (the epoch carries
    /// the reader-visible one).
    retired_below: u32,
    /// Batch birth times for [`WindowSpec::Duration`]: `(inserted_at,
    /// one-past-the-end id)` per batch, popped once aged out. Empty for
    /// doc-count windows.
    births: std::collections::VecDeque<(Instant, u32)>,
}

/// Timing of the most recent merge (streaming observability).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct MergeReport {
    /// Sealed points folded into the static epoch.
    pub merged_points: usize,
    /// Tombstoned ids purged from the tables by this merge.
    pub purged_points: usize,
    /// Window-retired rows compacted away by this merge (the static
    /// structure was rebased past them, reclaiming their memory).
    pub retired_rows_reclaimed: usize,
    /// Off-to-the-side build time (queries keep running throughout).
    pub build: Duration,
    /// Publication window: the write-lock hold for the epoch swap — the
    /// only interval in which a merge can delay an insert or delete (it
    /// never delays queries, which are lock-free). Wall time: on a
    /// saturated few-core host this includes scheduler latency while the
    /// *query* threads keep the CPU.
    pub publish: Duration,
    /// Time a paced merge spent sleeping for query pressure (excluded
    /// from `build`, which counts working time only; always zero for
    /// monolithic merges).
    pub yielded: Duration,
}

/// Point and memory accounting for one engine.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct EngineStats {
    /// Total live + deleted points stored.
    pub total_points: usize,
    /// Points in the static structure (including purged row slots).
    pub static_points: usize,
    /// Points buffered in sealed + open delta generations.
    pub delta_points: usize,
    /// Tombstoned points (active bits plus purged ids).
    pub deleted_points: usize,
    /// Tombstoned ids already purged from the static tables.
    pub purged_points: usize,
    /// Sealed generations awaiting merge.
    pub sealed_generations: usize,
    /// Merges performed so far.
    pub merges: u64,
    /// Ingest rows accepted (queued in a firehose channel) but not yet
    /// applied — nonzero only on sharded backends, whose ingest workers
    /// apply asynchronously; a bare engine applies inline.
    pub pending_ingest: u64,
    /// Bytes in static tables.
    pub static_table_bytes: usize,
    /// Bytes in delta bins.
    pub delta_table_bytes: usize,
    /// Bytes of stored sketches (delta generations only; static sketches
    /// are dropped at merge time).
    pub sketch_bytes: usize,
    /// Bytes of the dense hyperplane matrix (0 when on-the-fly).
    pub hyperplane_bytes: usize,
    /// Hardware threads the OS reports for this process (the paper's `T`).
    pub host_threads: usize,
    /// Pool workers process-wide currently pinned to a core (0 when
    /// `PLSH_PIN=off`, on single-threaded hosts, or with no pinned pools).
    pub pinned_workers: usize,
    /// Points answerable right now: inside the window, not tombstoned.
    pub live_points: usize,
    /// Points retired by the sliding window over the engine's lifetime
    /// (the watermark itself; 0 without a window).
    pub retired_points: usize,
    /// Retired points still physically resident — dead rows the next
    /// compacting merge will reclaim.
    pub retired_pending_purge: usize,
    /// Points currently resident beyond what the window spec allows —
    /// how far retirement lags the configured window (0 without a window;
    /// transiently nonzero between a batch landing and its retirement).
    pub window_lag: usize,
}

/// Snapshot of the engine's published epoch (tests, benches, monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochInfo {
    /// Generation counter of the published epoch.
    pub generation: u64,
    /// Rows in the static structure.
    pub static_points: usize,
    /// Sealed generations in the epoch.
    pub sealed_generations: usize,
    /// Points across the sealed generations.
    pub sealed_points: usize,
    /// `static_points + sealed_points` — the resident span queries
    /// against this epoch can see (window-compacted prefixes excluded).
    pub visible_points: usize,
    /// Global id of the oldest resident point (0 unless a window
    /// compaction has rebased the static structure).
    pub static_base: u32,
    /// The retirement watermark: ids below it are dead (equals
    /// `static_base` without a window).
    pub retired_below: u32,
}

/// Whether [`Engine::merge_delta_paced`] actually paces, controlled by
/// the `PLSH_MERGE_PACING` environment variable (cached on first read):
/// `off` / `0` / `false` falls back to the monolithic build.
fn merge_pacing_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("PLSH_MERGE_PACING") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    })
}

/// RAII increment of the engine's in-flight query gauge — the shared
/// query-pressure signal a paced merge polls between slices.
struct PressureGuard<'a>(&'a AtomicUsize);

impl<'a> PressureGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self(gauge)
    }
}

impl Drop for PressureGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A single-node PLSH engine.
///
/// All operations take `&self`: queries pin epochs lock-free, while
/// inserts, seals, merges, and deletes serialize on an internal write
/// mutex. Wrap the engine in an `Arc` (or use
/// [`StreamingEngine`](crate::streaming::StreamingEngine)) to drive ingest
/// and queries from different threads concurrently.
pub struct Engine {
    config: EngineConfig,
    planes: Arc<Hyperplanes>,
    epoch: EpochPtr<EngineView>,
    write: Mutex<WriteState>,
    /// Serializes merges (and `clear`) without blocking the write path for
    /// the duration of a merge build.
    merge_lock: Mutex<()>,
    /// Mirror of `WriteState::total` for lock-free `len()`.
    total: AtomicUsize,
    /// Queries currently executing — the shared query-pressure signal a
    /// paced merge reads between slices to decide whether to back off.
    active_queries: AtomicUsize,
    merges: AtomicU64,
    last_merge: Mutex<MergeReport>,
    scratches: ScratchPool,
    /// Incremental durability, when attached (see [`crate::persist`]).
    /// Hooks are called under the write mutex, so WAL order is id order.
    persister: RwLock<Option<Arc<crate::persist::EnginePersister>>>,
    /// Sticky read-only flag: set when a persistence operation keeps
    /// failing through its retry budget. Queries are unaffected; writes
    /// return [`PlshError::Degraded`] until [`Engine::heal`] succeeds.
    degraded: AtomicBool,
    degraded_reason: Mutex<Option<String>>,
}

impl Engine {
    /// Creates an empty engine (hyperplanes are generated here).
    pub fn new(config: EngineConfig, pool: &ThreadPool) -> Result<Self> {
        config.validate()?;
        let p = &config.params;
        let planes = match config.hyperplanes {
            HyperplanesKind::Dense => {
                Hyperplanes::new_dense(p.dim(), p.num_hashes(), p.seed(), pool)
            }
            HyperplanesKind::OnTheFly => {
                Hyperplanes::new_on_the_fly(p.dim(), p.num_hashes(), p.seed())
            }
        };
        let scratches = ScratchPool::new(p.m(), p.half_bits(), p.dim());
        Ok(Self {
            epoch: EpochPtr::new(Arc::new(EngineView::empty(p.dim(), config.capacity, 0))),
            write: Mutex::new(WriteState {
                open: None,
                total: 0,
                purged: Vec::new(),
                retired_below: 0,
                births: std::collections::VecDeque::new(),
            }),
            merge_lock: Mutex::new(()),
            total: AtomicUsize::new(0),
            active_queries: AtomicUsize::new(0),
            merges: AtomicU64::new(0),
            last_merge: Mutex::new(MergeReport::default()),
            scratches,
            planes: Arc::new(planes),
            config,
            persister: RwLock::new(None),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(None),
        })
    }

    /// The engine's parameters.
    pub fn params(&self) -> &PlshParams {
        &self.config.params
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Total stored points (live + deleted, sealed + open).
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points currently in the static structure.
    pub fn static_len(&self) -> usize {
        self.epoch.snapshot().static_len()
    }

    /// Points currently buffered in delta generations (sealed + open).
    pub fn delta_len(&self) -> usize {
        // Saturating: between the two loads a concurrent merge may publish
        // a static epoch that already covers points this `len()` read
        // predates.
        self.len()
            .saturating_sub(self.epoch.snapshot().static_end() as usize)
    }

    /// Points visible to queries right now (static + sealed; excludes an
    /// unsealed open generation). This is a **global id bound** — ids
    /// `0..visible_len` have been published — not a resident count: under
    /// a sliding window the compacted prefix no longer occupies memory.
    pub fn visible_len(&self) -> usize {
        self.epoch.snapshot().visible_len as usize
    }

    /// The retirement watermark: every id below it is retired (0 without
    /// a window and before any [`retire_to`](Self::retire_to)).
    pub fn retired_below(&self) -> u32 {
        self.epoch.snapshot().retired_below
    }

    /// The published epoch's shape; its invariant
    /// `visible = static + sealed` holds for *every* pin a reader can ever
    /// take — that is the "no half-merged epoch" guarantee.
    pub fn epoch_info(&self) -> EpochInfo {
        let (view, generation) = self.epoch.load();
        EpochInfo {
            generation,
            static_points: view.static_len(),
            sealed_generations: view.sealed.len(),
            sealed_points: view.sealed_points(),
            visible_points: view.visible_span(),
            static_base: view.static_base,
            retired_below: view.retired_below,
        }
    }

    /// Node capacity `C` — a bound on the *resident span* (window + delta
    /// + open generation), not on lifetime ids.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Remaining insert headroom (resident span left under the capacity).
    pub fn remaining_capacity(&self) -> usize {
        // Saturating on both subtractions: a concurrent merge can advance
        // the base between the two loads.
        let resident = self
            .len()
            .saturating_sub(self.epoch.snapshot().static_base as usize);
        self.config.capacity.saturating_sub(resident)
    }

    /// The stored vector for point `id`, or `None` when the id is out of
    /// range, below the retirement watermark, or was purged from the
    /// tables by a past merge (purged row slots persist so ids stay
    /// stable, but their contents are no longer part of the index). A
    /// tombstoned-but-unpurged id still returns its row — the data is
    /// retained until the next merge.
    pub fn vector(&self, id: u32) -> Option<SparseVector> {
        let view = self.epoch.snapshot();
        if id < view.retired_below {
            return None;
        }
        if id < view.static_end() {
            // Static ids are the only ones a merge can have purged.
            if self
                .write
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .purged
                .binary_search(&id)
                .is_ok()
            {
                return None;
            }
            return Some(view.static_data.row_vector(id - view.static_base));
        }
        if let Some(v) = Self::view_vector(&view, id) {
            return Some(v);
        }
        // Not in that snapshot: the id is in the open generation, or a
        // concurrent insert sealed it after our pin. Re-check under the
        // write lock, where the epoch cannot advance.
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(open) = w.open.as_ref() {
            if id >= open.base() && id < open.end() {
                return Some(open.data().row_vector(id - open.base()));
            }
        }
        let view = self.epoch.snapshot();
        Self::view_vector(&view, id)
    }

    fn view_vector(view: &EngineView, id: u32) -> Option<SparseVector> {
        if id < view.static_base {
            return None;
        }
        if id < view.static_end() {
            return Some(view.static_data.row_vector(id - view.static_base));
        }
        view.sealed
            .iter()
            .find(|g| id >= g.base() && id < g.end())
            .map(|g| g.data().row_vector(id - g.base()))
    }

    /// Inserts one vector; returns its node-local id.
    pub fn insert(&self, v: SparseVector, pool: &ThreadPool) -> Result<u32> {
        Ok(self.insert_batch(std::slice::from_ref(&v), pool)?[0])
    }

    /// Inserts a batch of vectors (paper: streaming arrives in ~100 K-point
    /// chunks, Section 6.2); returns their ids.
    ///
    /// The batch is hashed once into the open generation under the write
    /// mutex, then (by default) sealed — one epoch swap making it visible
    /// to queries. The batch is all-or-nothing with respect to capacity;
    /// dimension errors abort before any vector of the batch is applied.
    /// When the sealed delta reaches `η·C` and auto-merge is on, the merge
    /// runs inline on this thread; use
    /// [`StreamingEngine`](crate::streaming::StreamingEngine) to run it in
    /// the background instead.
    pub fn insert_batch(&self, vs: &[SparseVector], pool: &ThreadPool) -> Result<Vec<u32>> {
        let (ids, merge_due) = self.insert_batch_deferring_merge(vs, pool)?;
        if merge_due {
            self.merge_delta(pool);
        }
        Ok(ids)
    }

    /// The write path proper: insert + seal, returning whether the sealed
    /// delta crossed the auto-merge threshold (the caller decides whether
    /// to merge inline or in the background).
    pub(crate) fn insert_batch_deferring_merge(
        &self,
        vs: &[SparseVector],
        pool: &ThreadPool,
    ) -> Result<(Vec<u32>, bool)> {
        for v in vs {
            if let Some(max) = v.max_index() {
                if max >= self.config.params.dim() {
                    return Err(PlshError::DimensionOutOfRange {
                        index: max,
                        dim: self.config.params.dim(),
                    });
                }
            }
        }
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if self.is_degraded() {
            return Err(self.degraded_error());
        }
        // Capacity bounds the *resident span* (compacted prefixes cost
        // nothing); without a window the base stays 0 and this is the
        // classic total-vs-capacity check.
        let resident = (w.total - self.epoch.snapshot().static_base) as usize;
        if resident + vs.len() > self.config.capacity {
            return Err(PlshError::CapacityExceeded {
                capacity: self.config.capacity,
            });
        }
        let from = w.total;
        if !vs.is_empty() {
            // Write-ahead: the batch reaches the WAL (and is fsynced)
            // before it is applied in memory. A persistent WAL failure
            // rejects the batch *before* any memory mutation, so the
            // in-memory prefix stays exactly the durable prefix.
            if let Some(p) = self.persister() {
                if let Err(e) = p.log_insert(from, vs) {
                    self.degrade("WAL append", &e);
                    return Err(self.degraded_error());
                }
            }
            let p = &self.config.params;
            if w.open.is_none() {
                w.open = Some(DeltaGeneration::new(
                    from,
                    p.dim(),
                    p.m(),
                    p.half_bits(),
                    self.config.delta_layout,
                    vs.len(),
                ));
            }
            let open = w.open.as_mut().expect("installed above");
            open.append(vs, &self.planes, self.config.vectorized_hashing, pool)
                .expect("dimensions validated above");
            let seal_due = open.len() >= self.config.seal_min_points;
            w.total += vs.len() as u32;
            self.total.store(w.total as usize, Ordering::Release);
            if seal_due {
                self.seal_locked(&mut w);
            }
        }
        let ids: Vec<u32> = (from..from + vs.len() as u32).collect();
        // Advance the window watermark over whatever the batch aged out.
        // Retirement is one fsynced log record plus a pointer-move epoch
        // publish; the rows themselves wait for the next merge.
        if let Some(spec) = self.config.window {
            let target = match spec {
                WindowSpec::Docs(n) => w.total.saturating_sub(n),
                WindowSpec::Duration(d) => {
                    let now = Instant::now();
                    if !vs.is_empty() {
                        let end = w.total;
                        w.births.push_back((now, end));
                    }
                    let mut target = w.retired_below;
                    while let Some(&(at, end)) = w.births.front() {
                        if now.duration_since(at) < d {
                            break;
                        }
                        target = target.max(end);
                        w.births.pop_front();
                    }
                    target
                }
            };
            if target > w.retired_below {
                // The batch itself already landed (and is durable); a
                // failing retirement degrades the engine like a failing
                // delete would, surfaced on the *next* write.
                let _ = self.retire_locked(&mut w, target);
            }
        }
        let view = self.epoch.snapshot();
        let sealed_points = (w.total - w.open.as_ref().map_or(0, DeltaGeneration::len) as u32)
            .saturating_sub(view.static_end()) as usize;
        // A merge is due when the un-merged delta crosses η·C — or, under
        // a window, when enough retired rows await compaction that a merge
        // would reclaim η·C worth of memory. Both ride the same background
        // merge, so the resident span stays ≈ window + η·C + batch.
        let retire_backlog =
            (w.retired_below.min(view.visible_len)).saturating_sub(view.static_base) as usize;
        let threshold = self.config.eta * self.config.capacity as f64;
        let merge_due = self.config.auto_merge
            && (sealed_points as f64 >= threshold || retire_backlog as f64 >= threshold);
        drop(w);
        Ok((ids, merge_due))
    }

    /// Seals the open generation: wraps it in an `Arc` and publishes a new
    /// epoch whose sealed list includes it (a pointer move — the points
    /// themselves are not touched). Returns `false` when there was nothing
    /// to seal. Only needed explicitly when
    /// [`seal_min_points`](EngineConfig::seal_min_points) is raised above 1.
    pub fn seal(&self) -> bool {
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        self.seal_locked(&mut w)
    }

    fn seal_locked(&self, w: &mut MutexGuard<'_, WriteState>) -> bool {
        let Some(open) = w.open.take() else {
            return false;
        };
        if open.is_empty() {
            return false;
        }
        let gen = Arc::new(open);
        // Durability before visibility: the immutable segment is on disk
        // (and the covering WAL retired) before the epoch swap. When the
        // segment write keeps failing the seal is aborted — the generation
        // stays open, its rows still covered by the WAL — and the engine
        // degrades. When already degraded the hook is skipped: heal()
        // resynchronizes the whole directory from memory anyway.
        if !self.is_degraded() {
            if let Some(p) = self.persister() {
                if let Err(e) = p.on_seal(&gen) {
                    self.degrade("segment seal", &e);
                    if let Ok(open) = Arc::try_unwrap(gen) {
                        w.open = Some(open);
                    }
                    return false;
                }
            }
        }
        self.epoch
            .rcu(|prev| Arc::new(EngineView::with_sealed(prev, gen.clone())));
        true
    }

    /// Inserts everything from an iterator.
    pub fn extend<I>(&self, vs: I, pool: &ThreadPool) -> Result<Vec<u32>>
    where
        I: IntoIterator<Item = SparseVector>,
    {
        let vs: Vec<SparseVector> = vs.into_iter().collect();
        self.insert_batch(&vs, pool)
    }

    /// Merges every sealed generation into the next static epoch.
    ///
    /// Safe to call from any thread, concurrently with inserts, deletes,
    /// and queries: the new corpus and tables are built *off to the side*
    /// from the pinned epoch (readers keep querying the current one), and
    /// published with a single swap. Tombstoned ids are purged during the
    /// rebuild — dropped from every bucket, their bitvector bits
    /// reclaimed — and generations sealed while the merge was building
    /// simply remain sealed in the new epoch.
    pub fn merge_delta(&self, pool: &ThreadPool) {
        self.merge_delta_inner(pool, None);
    }

    /// The cooperative variant of [`merge_delta`](Self::merge_delta): the
    /// table build runs as bounded [`crate::table::MergeStepper`] slices,
    /// sleeping between slices while queries are in flight (the engine's
    /// query-pressure gauge), so a background merge yields the machine to
    /// the read path instead of racing it. Output and publish semantics
    /// are identical to the monolithic merge — the same state machine runs
    /// both, just with different slice budgets.
    ///
    /// Setting `PLSH_MERGE_PACING=off` (or `0` / `false`) falls back to
    /// the monolithic build.
    pub fn merge_delta_paced(&self, pool: &ThreadPool) {
        if merge_pacing_enabled() {
            self.merge_delta_inner(pool, Some(self.config.merge_pacing));
        } else {
            self.merge_delta_inner(pool, None);
        }
    }

    fn merge_delta_inner(&self, pool: &ThreadPool, pacing: Option<MergePacing>) {
        let _m = self.merge_lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.is_degraded() {
            return; // read-only: merging would commit nothing durably
        }
        let t0 = Instant::now();
        let p = &self.config.params;

        // Pin the epoch to merge. Seals may append while we build; those
        // generations are carried over untouched at publish time.
        let v0 = self.epoch.snapshot();
        let gens = v0.sealed.clone();
        let merge_end = v0.visible_len;
        let old_base = v0.static_base;
        // Window compaction target: everything below the new base leaves
        // the static structure wholesale — rows, bucket entries, bitmap
        // bits — in the same pass that purges per-id tombstones. Clamped
        // to the merge's coverage; a watermark beyond it (retired rows
        // still in the open generation) is caught by a later merge.
        let new_base = v0.retired_below.clamp(old_base, merge_end);

        // Purge decision: one bitvector snapshot, applied identically to
        // all L tables. Only surviving ids in `[new_base, merge_end)`
        // participate (retired ids are dropped by the watermark, later
        // ids are not part of this merge).
        let tombstones = v0.deleted.snapshot();
        let mut purged_now: Vec<u32> = Vec::new();
        for (wi, &word) in tombstones.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let id = old_base + (wi * 64) as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                if id >= new_base && id < merge_end {
                    purged_now.push(id);
                }
            }
        }
        if gens.is_empty() && purged_now.is_empty() && new_base == old_base {
            return; // nothing to fold, purge, or compact: the epoch stands
        }

        // Build the next epoch off to the side: the static suffix
        // surviving the window, then every sealed row at or beyond the
        // new base (a straddled generation contributes its suffix).
        let mut static_data = if new_base == old_base {
            (*v0.static_data).clone()
        } else {
            let mut compacted = CrsMatrix::new(p.dim());
            compacted.extend_from_range(&v0.static_data, (new_base - old_base) as usize);
            compacted
        };
        for g in &gens {
            static_data.extend_from_range(g.data(), new_base.saturating_sub(g.base()) as usize);
        }
        let mut yielded = Duration::ZERO;
        let statics = match pacing {
            None => StaticTables::merge_generations(
                v0.statics.as_deref(),
                p.m(),
                p.half_bits(),
                static_data.num_rows(),
                &gens,
                &tombstones,
                old_base,
                new_base,
                pool,
            ),
            Some(pc) => {
                let mut stepper = crate::table::MergeStepper::new(
                    v0.statics.as_deref(),
                    p.m(),
                    p.half_bits(),
                    static_data.num_rows(),
                    &gens,
                    &tombstones,
                    old_base,
                    new_base,
                );
                while stepper.step(pc.step_buckets, pc.step_rows) {
                    if !pc.yield_sleep.is_zero() && self.active_queries.load(Ordering::Relaxed) > 0
                    {
                        let s0 = Instant::now();
                        std::thread::sleep(pc.yield_sleep);
                        yielded += s0.elapsed();
                    }
                }
                stepper.finish()
            }
        };
        if self.config.query_strategy.huge_pages {
            statics.advise_huge_pages();
        }
        // The next static segment goes to disk off to the side, like the
        // tables themselves; the manifest swap at publish time is what
        // commits it. `persist_to` holds the merge lock, so the persister
        // cannot attach or detach between here and publish.
        let persister = self.persister();
        let prepared_seq = match persister
            .as_ref()
            .map(|p| p.prepare_static(new_base, &static_data))
        {
            Some(Ok(seq)) => Some(seq),
            Some(Err(e)) => {
                // Nothing published yet: abort the merge with memory and
                // disk both at the pre-merge state.
                self.degrade("static segment prepare", &e);
                return;
            }
            None => None,
        };
        // Build time is working time: pacing sleeps are reported
        // separately so merge cost stays comparable across both paths.
        let build = t0.elapsed().saturating_sub(yielded);

        // Publish: one swap under the write lock. Everything sealed after
        // our pin survives verbatim; the purged ids' bits are reclaimed in
        // a fresh bitmap (readers pinned on the old epoch keep the old
        // bitmap, whose bits they still need for the old buckets). The
        // publish timer starts after lock acquisition: waiting behind an
        // in-flight insert is that insert's cost, not the merge's pause.
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let t1 = Instant::now();
        let current = self.epoch.snapshot();
        debug_assert!(current
            .sealed
            .iter()
            .zip(&gens)
            .all(|(a, b)| Arc::ptr_eq(a, b)));
        let remaining = current.sealed[gens.len()..].to_vec();
        // The rebased bitmap drops the compacted prefix's bits wholesale
        // and reclaims the purged ids' bits; bits set after our snapshot
        // (concurrent deletes) survive because we rebase the *live* bitmap
        // under the write lock.
        let deleted = Arc::new(current.deleted.rebased_without(&purged_now, new_base));
        let static_data = Arc::new(static_data);
        let mut purged = w.purged.clone();
        purged.extend_from_slice(&purged_now);
        purged.sort_unstable();
        // Retired ids need no per-id record: the watermark accounts for
        // everything below the new base.
        purged.retain(|&id| id >= new_base);
        if let Some(p) = &persister {
            // Commit the merge durably *before* it becomes visible: the
            // manifest swap is the atomic commit point (with every pending
            // tombstone snapshotted); the consumed generation files are
            // retired behind it. A persistent failure aborts the merge —
            // no epoch swap, no bookkeeping mutation — so memory and disk
            // both still hold the pre-merge state.
            let seq = prepared_seq.expect("prepared with the same persister");
            if let Err(e) = p.publish_static(
                seq,
                new_base as u64,
                static_data.num_rows() as u64,
                &purged,
                deleted.set_ids(w.total),
                w.retired_below,
            ) {
                self.degrade("manifest swap", &e);
                return;
            }
        }
        let view = EngineView {
            visible_len: current.visible_len,
            static_data: static_data.clone(),
            statics: Some(Arc::new(statics)),
            sealed: remaining,
            deleted: deleted.clone(),
            static_base: new_base,
            retired_below: current.retired_below,
        };
        w.purged = purged;
        self.epoch.store(Arc::new(view));
        drop(w);
        let publish = t1.elapsed();

        self.merges.fetch_add(1, Ordering::Relaxed);
        *self.last_merge.lock().unwrap_or_else(|e| e.into_inner()) = MergeReport {
            merged_points: (merge_end - v0.static_end()) as usize,
            purged_points: purged_now.len(),
            retired_rows_reclaimed: (new_base - old_base) as usize,
            build,
            publish,
            yielded,
        };
    }

    /// Timing and purge counts of the most recent merge.
    pub fn last_merge(&self) -> MergeReport {
        *self.last_merge.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Advances the retirement watermark: every id below `watermark`
    /// (clamped to the assigned id range) becomes dead, as one range
    /// tombstone instead of per-id bits. Returns `true` when the
    /// watermark moved. Monotonic — a lower watermark is a no-op.
    ///
    /// Engines with a [`WindowSpec`] advance the watermark automatically
    /// on insert; this entry point serves manual retirement and the
    /// sharded cluster's cross-shard window cut. The watermark is logged
    /// (fsynced) before it takes effect, like a delete; the dead rows are
    /// physically reclaimed by the next merge, which rebases the static
    /// structure at the watermark.
    pub fn retire_to(&self, watermark: u32) -> Result<bool> {
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if self.is_degraded() {
            return Err(self.degraded_error());
        }
        let target = watermark.min(w.total);
        self.retire_locked(&mut w, target)
    }

    fn retire_locked(&self, w: &mut MutexGuard<'_, WriteState>, target: u32) -> Result<bool> {
        debug_assert!(target <= w.total);
        if target <= w.retired_below {
            return Ok(false);
        }
        if let Some(p) = self.persister() {
            if let Err(e) = p.log_retire(target) {
                self.degrade("retire watermark append", &e);
                return Err(self.degraded_error());
            }
        }
        w.retired_below = target;
        self.epoch
            .rcu(|prev| Arc::new(EngineView::with_watermark(prev, target)));
        Ok(true)
    }

    /// Tombstones a point; returns `false` if it was already deleted or out
    /// of range. Takes effect immediately on all future queries; the point
    /// is physically purged from the tables at the next merge.
    ///
    /// Infallible convenience over [`try_delete`](Self::try_delete): a
    /// degraded engine reports `false` (nothing was deleted).
    pub fn delete(&self, id: u32) -> bool {
        self.try_delete(id).unwrap_or(false)
    }

    /// Tombstones a point, surfacing degraded-mode rejection as
    /// [`PlshError::Degraded`] instead of a silent `false`. The tombstone
    /// reaches the delete log (fsynced) before the bit is set, so a
    /// persistent log failure rejects the delete with no memory change.
    pub fn try_delete(&self, id: u32) -> Result<bool> {
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if self.is_degraded() {
            return Err(self.degraded_error());
        }
        if (id as usize) >= w.total as usize {
            return Ok(false);
        }
        if id < w.retired_below {
            return Ok(false); // already dead under the range tombstone
        }
        if w.purged.binary_search(&id).is_ok() {
            return Ok(false);
        }
        let view = self.epoch.snapshot();
        if view.deleted.is_set(id) {
            return Ok(false);
        }
        if let Some(p) = self.persister() {
            if let Err(e) = p.log_delete(id) {
                self.degrade("tombstone append", &e);
                return Err(self.degraded_error());
            }
        }
        let newly = view.deleted.set(id);
        drop(w);
        Ok(newly)
    }

    /// True iff `id` is dead: tombstoned (pending or already purged) or
    /// retired by the sliding window.
    pub fn is_deleted(&self, id: u32) -> bool {
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if (id as usize) >= w.total as usize {
            return false;
        }
        id < w.retired_below
            || w.purged.binary_search(&id).is_ok()
            || self.epoch.snapshot().deleted.is_set(id)
    }

    /// Ids purged from the static tables by past merges (still tombstoned;
    /// their row slots remain so ids stay stable). Sorted ascending.
    pub fn purged_ids(&self) -> Vec<u32> {
        self.write
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .purged
            .clone()
    }

    /// Atomically captures everything a snapshot needs — one write-lock
    /// hold, one epoch pin — as `(static_base, static_len, resident rows
    /// in id order from `static_base`, pending tombstones, purged ids,
    /// retired_below)`. Holding the lock keeps a concurrent ingest or
    /// merge from publishing mid-capture, so the parts are mutually
    /// consistent.
    pub(crate) fn capture_state(&self) -> (u32, usize, Vec<SparseVector>, Vec<u32>, Vec<u32>, u32) {
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let view = self.epoch.snapshot();
        let base = view.static_base;
        let mut vectors = Vec::with_capacity((w.total - base) as usize);
        for local in 0..view.static_len() as u32 {
            vectors.push(view.static_data.row_vector(local));
        }
        for g in view.sealed.iter().map(Arc::as_ref).chain(w.open.as_ref()) {
            for local in 0..g.len() as u32 {
                vectors.push(g.data().row_vector(local));
            }
        }
        debug_assert_eq!(vectors.len(), (w.total - base) as usize);
        // Set bits are exactly the pending (unpurged) tombstones: merges
        // reclaim the bits of everything they purge or compact away.
        let deleted = view.deleted.set_ids(w.total);
        (
            base,
            view.static_len(),
            vectors,
            deleted,
            w.purged.clone(),
            w.retired_below,
        )
    }

    /// Fast-forwards an **empty** engine's id space to `base`: the next
    /// insert receives id `base`, and everything below it is considered
    /// retired-and-compacted. Recovery of a window-compacted directory
    /// lands here so recovered ids line up with the ids on disk.
    pub(crate) fn fast_forward_empty(&self, base: u32) {
        let _m = self.merge_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            w.total == 0 && w.open.is_none(),
            "fast-forward of a non-empty engine"
        );
        if base == 0 {
            return;
        }
        w.total = base;
        w.retired_below = base;
        self.total.store(base as usize, Ordering::Release);
        self.epoch.store(Arc::new(EngineView::empty(
            self.config.params.dim(),
            self.config.capacity,
            base,
        )));
    }

    /// Retires the node's entire contents (Section 6: the rolling window
    /// erases the oldest `M` nodes wholesale).
    pub fn clear(&self) {
        let _m = self.merge_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        w.open = None;
        w.total = 0;
        w.purged.clear();
        w.retired_below = 0;
        w.births.clear();
        self.total.store(0, Ordering::Release);
        self.epoch.store(Arc::new(EngineView::empty(
            self.config.params.dim(),
            self.config.capacity,
            0,
        )));
        if !self.is_degraded() {
            if let Some(p) = self.persister() {
                if let Err(e) = p.on_clear() {
                    self.degrade("clear commit", &e);
                }
            }
        }
    }

    /// The attached persister, if durability is on.
    pub(crate) fn persister(&self) -> Option<Arc<crate::persist::EnginePersister>> {
        self.persister
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn set_persister(&self, p: crate::persist::EnginePersister) {
        *self.persister.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(p));
    }

    /// Baseline capture + attach for [`crate::persist`]: one hold of the
    /// merge and write locks, so the baseline is mutually consistent and
    /// no merge can publish between capture and attachment.
    pub(crate) fn attach_persister(&self, dir: &std::path::Path) -> Result<()> {
        let _m = self.merge_lock.lock().unwrap_or_else(|e| e.into_inner());
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let view = self.epoch.snapshot();
        let baseline = crate::persist::Baseline {
            params: &self.config.params,
            capacity: self.config.capacity as u64,
            eta: self.config.eta,
            seal_min_points: self.config.seal_min_points as u64,
            window: self.config.window,
            static_base: view.static_base,
            retired_below: w.retired_below,
            static_data: &view.static_data,
            static_len: view.static_len(),
            sealed: &view.sealed,
            open: w.open.as_ref(),
            purged: &w.purged,
            pending: view.deleted.set_ids(w.total),
        };
        let p = crate::persist::EnginePersister::create(dir, &baseline)?;
        *self.persister.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(p));
        Ok(())
    }

    /// True while the engine is in degraded read-only mode: a persistence
    /// operation kept failing through its retry budget, so writes are
    /// rejected with [`PlshError::Degraded`] while queries keep answering
    /// off the pinned epoch. [`heal`](Self::heal) exits the mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Why the engine degraded, when it did.
    pub fn degraded_reason(&self) -> Option<String> {
        self.degraded_reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn degrade(&self, ctx: &str, e: &std::io::Error) {
        let mut r = self
            .degraded_reason
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if r.is_none() {
            *r = Some(format!("{ctx}: {e}"));
        }
        drop(r);
        self.degraded.store(true, Ordering::Release);
    }

    fn degraded_error(&self) -> PlshError {
        PlshError::Degraded(
            self.degraded_reason()
                .unwrap_or_else(|| "persistent I/O failure".to_string()),
        )
    }

    /// Attempts to leave degraded read-only mode. With a persister
    /// attached, the directory is rebuilt from a fresh baseline of the
    /// current in-memory contents (a new `data-<reset>` lifetime plus a
    /// manifest swap); memory is the source of truth, so nothing written
    /// while degraded is lost. Returns `true` when the engine is writable
    /// again — `false` means the underlying I/O is still failing and the
    /// call can simply be retried. Idempotent and safe to call anytime.
    pub fn heal(&self) -> bool {
        if !self.is_degraded() {
            return true;
        }
        let Some(p) = self.persister() else {
            self.clear_degraded();
            return true;
        };
        let _m = self.merge_lock.lock().unwrap_or_else(|e| e.into_inner());
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let view = self.epoch.snapshot();
        let baseline = crate::persist::Baseline {
            params: &self.config.params,
            capacity: self.config.capacity as u64,
            eta: self.config.eta,
            seal_min_points: self.config.seal_min_points as u64,
            window: self.config.window,
            static_base: view.static_base,
            retired_below: w.retired_below,
            static_data: &view.static_data,
            static_len: view.static_len(),
            sealed: &view.sealed,
            open: w.open.as_ref(),
            purged: &w.purged,
            pending: view.deleted.set_ids(w.total),
        };
        match p.resync(&baseline) {
            Ok(()) => {
                drop(w);
                self.clear_degraded();
                true
            }
            Err(_) => false,
        }
    }

    fn clear_degraded(&self) {
        *self
            .degraded_reason
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;
        self.degraded.store(false, Ordering::Release);
    }

    /// A point-in-time health snapshot: the degraded flag and reason, how
    /// many open-generation rows are durable only in the WAL (`wal_lag`),
    /// and how many transient I/O errors the persister absorbed. Wrappers
    /// ([`StreamingEngine`](crate::streaming::StreamingEngine), the
    /// cluster) extend this with their worker liveness.
    pub fn health(&self) -> HealthReport {
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let view = self.epoch.snapshot();
        let wal_lag_rows = w.open.as_ref().map_or(0, DeltaGeneration::len);
        let (live_points, retired_pending_purge, window_lag) = self.window_accounting(&w, &view);
        drop(w);
        HealthReport {
            degraded: self.is_degraded(),
            degraded_reason: self.degraded_reason(),
            wal_lag_rows,
            persist_retries: self.persister().map_or(0, |p| p.io_retries()),
            pending_ingest: 0,
            merge_backlog: view.sealed.len(),
            live_points,
            retired_pending_purge,
            window_lag,
            workers: Vec::new(),
        }
    }

    /// Window accounting under the write lock: `(live_points,
    /// retired_pending_purge, window_lag)`.
    fn window_accounting(&self, w: &WriteState, view: &EngineView) -> (usize, usize, usize) {
        let tombstoned = view.deleted.set_ids_in(w.retired_below, w.total).len();
        let purged_live = w.purged.len() - w.purged.partition_point(|&id| id < w.retired_below);
        let live = (w.total - w.retired_below) as usize - tombstoned - purged_live;
        let pending_purge = w.retired_below.saturating_sub(view.static_base) as usize;
        let lag = match self.config.window {
            None => 0,
            Some(WindowSpec::Docs(n)) => ((w.total - w.retired_below).saturating_sub(n)) as usize,
            Some(WindowSpec::Duration(d)) => {
                let now = Instant::now();
                w.births
                    .iter()
                    .filter(|(at, _)| now.duration_since(*at) >= d)
                    .map(|&(_, end)| end)
                    .max()
                    .map_or(0, |end| end.saturating_sub(w.retired_below) as usize)
            }
        };
        (live, pending_purge, lag)
    }

    fn view_ctx<'a>(&'a self, view: &'a EngineView) -> QueryContext<'a> {
        QueryContext {
            static_data: &view.static_data,
            planes: &self.planes,
            static_tables: view.statics.as_deref(),
            deltas: &view.sealed,
            deleted: if view.deleted.count() == 0 {
                None
            } else {
                Some(&view.deleted.words)
            },
            m: self.config.params.m(),
            half_bits: self.config.params.half_bits(),
            radius: self.config.params.radius() as f32,
            base: view.static_base,
            retired_below: view.retired_below,
            strategy: self.config.query_strategy,
            max_candidates: usize::MAX,
        }
    }

    /// Answers one [`SearchRequest`] — radius or k-NN, one query or a
    /// batch, with optional per-request radius/strategy overrides,
    /// candidate budget, counters, and phase profiling. This is the typed
    /// entry point every other query convenience delegates to; the whole
    /// request runs against one pinned epoch
    /// ([`SearchResponse::epoch`]).
    ///
    /// `pool` drives batch fan-out (single-query requests never touch it).
    pub fn search(&self, req: &SearchRequest, pool: &ThreadPool) -> Result<SearchResponse> {
        req.validate(self.config.params.dim())?;
        let _pressure = PressureGuard::enter(&self.active_queries);
        let (view, generation) = self.epoch.load();
        let epoch = EpochInfo {
            generation,
            static_points: view.static_len(),
            sealed_generations: view.sealed.len(),
            sealed_points: view.sealed_points(),
            visible_points: view.visible_span(),
            static_base: view.static_base,
            retired_below: view.retired_below,
        };
        let mut ctx = self.view_ctx(&view);
        if let Some(s) = req.strategy_override() {
            ctx.strategy = s;
        }
        if let Some(r) = req.radius_override() {
            ctx.radius = r;
        }
        // k-NN ranks everything the tables surface — radius π admits
        // every candidate and the post-pass keeps the k closest — unless
        // the request set an explicit radius, which then acts as a
        // distance cap ("the k nearest within R").
        let top_k = match req.mode() {
            SearchMode::Knn(k) => {
                ctx.radius = req.radius_override().unwrap_or(std::f32::consts::PI);
                Some(k)
            }
            SearchMode::Radius => None,
        };
        if let Some(budget) = req.max_candidates() {
            ctx.max_candidates = budget;
        }

        let qs = req.queries();
        let (answers, stats, timings) = if req.profiles() {
            let mut scratch = self.scratches.take(view.visible_span());
            let (answers, timings, totals) = query::profile_batch(&ctx, qs, &mut scratch);
            self.scratches.put(scratch);
            let stats = BatchStats {
                queries: qs.len() as u64,
                totals,
                elapsed: timings.total(),
            };
            (answers, stats, Some(timings))
        } else if qs.len() == 1 && !req.uses_per_query_pipeline() {
            // Single-query fast path: no pool round-trip, no batch setup.
            let t0 = Instant::now();
            let mut scratch = self.scratches.take(view.visible_span());
            let (hits, totals) = query::execute_query(&ctx, &qs[0], &mut scratch);
            self.scratches.put(scratch);
            let stats = BatchStats {
                queries: 1,
                totals,
                elapsed: t0.elapsed(),
            };
            (vec![hits], stats, None)
        } else if req.uses_per_query_pipeline() {
            let (a, s) = query::execute_batch(&ctx, qs, pool, &self.scratches);
            (a, s, None)
        } else {
            let (a, s) = query::execute_batch_pipelined(&ctx, qs, pool, &self.scratches);
            (a, s, None)
        };

        let mut results: Vec<Vec<SearchHit>> = answers
            .into_iter()
            .map(|hits| hits.into_iter().map(SearchHit::from).collect())
            .collect();
        if let Some(k) = top_k {
            for hits in &mut results {
                rank_top_k(hits, k);
            }
        }
        Ok(SearchResponse {
            results,
            stats: req.collects_stats().then_some(stats),
            phase_timings: timings,
            epoch: Some(epoch),
            timed_out_shards: Vec::new(),
        })
    }

    /// Answers one radius query against the currently published epoch — a
    /// thin convenience over [`search`](Self::search) that skips request
    /// assembly on the hot single-query path.
    pub fn query(&self, q: &SparseVector) -> Vec<Neighbor> {
        let _pressure = PressureGuard::enter(&self.active_queries);
        let view = self.epoch.snapshot();
        let mut scratch = self.scratches.take(view.visible_span());
        let (hits, _) = query::execute_query(&self.view_ctx(&view), q, &mut scratch);
        self.scratches.put(scratch);
        hits
    }

    /// Answers a batch of radius queries through the batched SIMD
    /// pipeline — a thin convenience over [`search`](Self::search): Q1 is
    /// hashed for the whole batch first ([`crate::hash::SketchMatrix::sketch_batch`]),
    /// then Q2–Q4 fan out one work-stealing task per query. The whole
    /// batch runs against one pinned epoch.
    pub fn query_batch(
        &self,
        qs: &[SparseVector],
        pool: &ThreadPool,
    ) -> (Vec<Vec<Neighbor>>, BatchStats) {
        let _pressure = PressureGuard::enter(&self.active_queries);
        let view = self.epoch.snapshot();
        query::execute_batch_pipelined(&self.view_ctx(&view), qs, pool, &self.scratches)
    }

    /// Queries currently executing — the signal a paced merge backs off
    /// on. Exposed for tests and monitoring.
    pub fn active_queries(&self) -> usize {
        self.active_queries.load(Ordering::Relaxed)
    }

    /// Point/memory accounting.
    pub fn stats(&self) -> EngineStats {
        // Lock first, then pin: publishes happen under the write lock, so
        // the view and the write-side counters are mutually consistent
        // (pinning first could pair a pre-merge bitmap with a post-merge
        // purged list and double-count tombstones).
        let w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let view = self.epoch.snapshot();
        let open = w.open.as_ref();
        let delta_table_bytes = view
            .sealed
            .iter()
            .map(|g| g.delta_bytes())
            .chain(open.map(DeltaGeneration::delta_bytes))
            .sum();
        let sketch_bytes = view
            .sealed
            .iter()
            .map(|g| g.sketches().memory_bytes())
            .chain(open.map(|g| g.sketches().memory_bytes()))
            .sum();
        let (live_points, retired_pending_purge, window_lag) = self.window_accounting(&w, &view);
        EngineStats {
            total_points: w.total as usize,
            static_points: view.static_len(),
            delta_points: (w.total - view.static_end()) as usize,
            deleted_points: view.deleted.count() + w.purged.len(),
            purged_points: w.purged.len(),
            sealed_generations: view.sealed.len(),
            merges: self.merges.load(Ordering::Relaxed),
            pending_ingest: 0,
            static_table_bytes: view.statics.as_ref().map_or(0, |s| s.memory_bytes()),
            delta_table_bytes,
            sketch_bytes,
            hyperplane_bytes: self.planes.memory_bytes(),
            host_threads: plsh_parallel::affinity::host_threads(),
            pinned_workers: plsh_parallel::pinned_worker_count(),
            live_points,
            retired_points: w.retired_below as usize,
            retired_pending_purge,
            window_lag,
        }
    }

    /// A scratch suitable for external query drivers (tests, benches).
    pub fn make_scratch(&self) -> QueryScratch {
        self.scratches.take(self.epoch.snapshot().visible_span())
    }
}

impl SearchBackend for Engine {
    fn search(&self, req: &SearchRequest, pool: &ThreadPool) -> Result<SearchResponse> {
        Engine::search(self, req, pool)
    }
}

/// Derives the largest delta fraction `η` keeping worst-case query time
/// within `slowdown` × the static query time (Section 6.3).
///
/// With static time `t_s` (all data static) and streaming time `t_d` (all
/// data in delta bins), the worst-case mixed time is
/// `(1−η)·t_s + η·t_d ≤ slowdown·t_s`, hence
/// `η ≤ (slowdown − 1)·t_s / (t_d − t_s)`. The paper plugs in 1.4 ms and
/// 6 ms with slowdown 1.5 to get η ≤ 0.15 and chooses 0.1.
pub fn eta_bound(static_time: f64, delta_time: f64, slowdown: f64) -> f64 {
    assert!(static_time > 0.0 && slowdown >= 1.0);
    if delta_time <= static_time {
        return 1.0; // delta is no slower; any fraction is fine
    }
    ((slowdown - 1.0) * static_time / (delta_time - static_time)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn params(dim: u32) -> PlshParams {
        PlshParams::builder(dim)
            .k(6)
            .m(6)
            .radius(0.9)
            .delta(0.1)
            .seed(99)
            .build()
            .unwrap()
    }

    fn random_vec(rng: &mut SplitMix64, dim: u32) -> SparseVector {
        let a = rng.next_below(dim as u64) as u32;
        let b = (a + 1 + rng.next_below(dim as u64 - 1) as u32) % dim;
        SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
    }

    #[test]
    fn insert_query_roundtrip_without_merge() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(1);
        let vs: Vec<SparseVector> = (0..50).map(|_| random_vec(&mut rng, 64)).collect();
        let ids = e.insert_batch(&vs, &pool).unwrap();
        assert_eq!(ids, (0..50).collect::<Vec<u32>>());
        assert_eq!(e.static_len(), 0);
        assert_eq!(e.delta_len(), 50);
        // Every point must find itself purely through the delta tables.
        for (i, v) in vs.iter().enumerate() {
            let hits = e.query(v);
            assert!(
                hits.iter()
                    .any(|h| h.index == i as u32 && h.distance < 1e-3),
                "point {i} not found pre-merge"
            );
        }
    }

    #[test]
    fn merge_preserves_query_answers() {
        let pool = ThreadPool::new(2);
        let e = Engine::new(EngineConfig::new(params(64), 200).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(2);
        let vs: Vec<SparseVector> = (0..120).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();

        let pre: Vec<Vec<u32>> = vs
            .iter()
            .map(|v| {
                let mut hits: Vec<u32> = e.query(v).iter().map(|h| h.index).collect();
                hits.sort_unstable();
                hits
            })
            .collect();
        e.merge_delta(&pool);
        assert_eq!(e.static_len(), 120);
        assert_eq!(e.delta_len(), 0);
        for (v, expect) in vs.iter().zip(&pre) {
            let mut hits: Vec<u32> = e.query(v).iter().map(|h| h.index).collect();
            hits.sort_unstable();
            assert_eq!(&hits, expect, "merge must not change answers");
        }
    }

    #[test]
    fn mixed_static_and_delta_queries() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 300).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(3);
        let first: Vec<SparseVector> = (0..80).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&first, &pool).unwrap();
        e.merge_delta(&pool);
        let second: Vec<SparseVector> = (0..40).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&second, &pool).unwrap();
        assert_eq!(e.static_len(), 80);
        assert_eq!(e.delta_len(), 40);
        // Old and new points are both findable.
        for (i, v) in first.iter().enumerate() {
            assert!(e.query(v).iter().any(|h| h.index == i as u32));
        }
        for (i, v) in second.iter().enumerate() {
            let id = 80 + i as u32;
            assert!(e.query(v).iter().any(|h| h.index == id));
        }
    }

    #[test]
    fn auto_merge_fires_at_eta() {
        let pool = ThreadPool::new(1);
        let config = EngineConfig::new(params(64), 100).with_eta(0.1);
        let e = Engine::new(config, &pool).unwrap();
        let mut rng = SplitMix64::new(4);
        for i in 0..10 {
            e.insert(random_vec(&mut rng, 64), &pool).unwrap();
            let _ = i;
        }
        // 10 points = eta * capacity, so a merge must have fired.
        assert!(e.stats().merges >= 1);
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.static_len(), 10);
    }

    #[test]
    fn capacity_is_enforced_atomically() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 10), &pool).unwrap();
        let mut rng = SplitMix64::new(5);
        let vs: Vec<SparseVector> = (0..11).map(|_| random_vec(&mut rng, 64)).collect();
        assert_eq!(
            e.insert_batch(&vs, &pool).unwrap_err(),
            PlshError::CapacityExceeded { capacity: 10 }
        );
        assert_eq!(e.len(), 0, "failed batch must not be partially applied");
        e.insert_batch(&vs[..10], &pool).unwrap();
        assert_eq!(e.remaining_capacity(), 0);
        assert!(e.insert(vs[10].clone(), &pool).is_err());
    }

    #[test]
    fn dimension_errors_abort_batch() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 10), &pool).unwrap();
        let good = SparseVector::unit(vec![(0, 1.0)]).unwrap();
        let bad = SparseVector::unit(vec![(64, 1.0)]).unwrap();
        let err = e.insert_batch(&[good, bad], &pool).unwrap_err();
        assert_eq!(err, PlshError::DimensionOutOfRange { index: 64, dim: 64 });
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn delete_hides_points_from_queries() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let v = SparseVector::unit(vec![(3, 1.0), (9, 0.5)]).unwrap();
        let id = e.insert(v.clone(), &pool).unwrap();
        assert!(e.query(&v).iter().any(|h| h.index == id));
        assert!(e.delete(id));
        assert!(!e.delete(id), "double delete returns false");
        assert!(e.is_deleted(id));
        assert!(!e.query(&v).iter().any(|h| h.index == id));
        // Deletion also filters static-path answers after a merge.
        e.merge_delta(&pool);
        assert!(!e.query(&v).iter().any(|h| h.index == id));
        assert!(e.is_deleted(id), "purged points stay deleted");
        assert!(!e.delete(id), "purged points cannot be re-deleted");
        assert!(!e.delete(55), "out of range delete is rejected");
    }

    #[test]
    fn merge_purges_tombstones_and_reclaims_bits() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(14);
        let vs: Vec<SparseVector> = (0..40).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        for id in [3u32, 17, 39] {
            assert!(e.delete(id));
        }
        assert_eq!(e.stats().deleted_points, 3);
        assert_eq!(e.stats().purged_points, 0);
        e.merge_delta(&pool);
        let stats = e.stats();
        // Still reported deleted, but the bits have been reclaimed and the
        // ids no longer occupy any bucket.
        assert_eq!(stats.deleted_points, 3);
        assert_eq!(stats.purged_points, 3);
        assert_eq!(e.purged_ids(), vec![3, 17, 39]);
        assert_eq!(e.last_merge().purged_points, 3);
        for id in [3u32, 17, 39] {
            assert!(e.is_deleted(id));
            assert!(!e.query(&vs[id as usize]).iter().any(|h| h.index == id));
        }
        // Survivors unaffected.
        assert!(e.query(&vs[5]).iter().any(|h| h.index == 5));
        // A second merge keeps the purged set (nothing new to purge).
        e.merge_delta(&pool);
        assert_eq!(e.stats().purged_points, 3);
    }

    #[test]
    fn epoch_info_is_always_consistent() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 200).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(15);
        let mut last_gen = e.epoch_info().generation;
        for round in 0..6 {
            let vs: Vec<SparseVector> = (0..10).map(|_| random_vec(&mut rng, 64)).collect();
            e.insert_batch(&vs, &pool).unwrap();
            if round % 2 == 1 {
                e.merge_delta(&pool);
            }
            let info = e.epoch_info();
            assert_eq!(
                info.visible_points,
                info.static_points + info.sealed_points,
                "epoch must never be half-merged"
            );
            assert!(info.generation > last_gen);
            last_gen = info.generation;
        }
        assert_eq!(e.visible_len(), 60);
    }

    #[test]
    fn seal_min_points_coalesces_batches() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(
            EngineConfig::new(params(64), 100)
                .manual_merge()
                .with_seal_min_points(25),
            &pool,
        )
        .unwrap();
        let mut rng = SplitMix64::new(16);
        let vs: Vec<SparseVector> = (0..30).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs[..10], &pool).unwrap();
        // Below the threshold: buffered but not yet visible.
        assert_eq!(e.len(), 10);
        assert_eq!(e.visible_len(), 0);
        assert_eq!(
            e.vector(3).expect("open-generation rows are reachable"),
            vs[3]
        );
        assert_eq!(e.vector(99), None, "out-of-range ids are None, not a panic");
        e.insert_batch(&vs[10..], &pool).unwrap();
        // Crossing the threshold seals one coalesced generation.
        assert_eq!(e.visible_len(), 30);
        assert_eq!(e.epoch_info().sealed_generations, 1);
        for (i, v) in vs.iter().enumerate() {
            assert!(e.query(v).iter().any(|h| h.index == i as u32));
        }
        // Explicit seal on an empty open generation is a no-op.
        assert!(!e.seal());
    }

    #[test]
    fn clear_retires_everything() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 50), &pool).unwrap();
        let mut rng = SplitMix64::new(6);
        let vs: Vec<SparseVector> = (0..20).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        e.delete(3);
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.delta_len(), 0);
        assert_eq!(e.static_len(), 0);
        assert_eq!(e.stats().deleted_points, 0);
        assert!(e.query(&vs[0]).is_empty());
        // Node is reusable after retirement.
        let id = e.insert(vs[0].clone(), &pool).unwrap();
        assert_eq!(id, 0);
        assert!(e.query(&vs[0]).iter().any(|h| h.index == 0));
    }

    #[test]
    fn batch_query_agrees_with_singles() {
        let pool = ThreadPool::new(2);
        let e = Engine::new(EngineConfig::new(params(64), 200), &pool).unwrap();
        let mut rng = SplitMix64::new(7);
        let vs: Vec<SparseVector> = (0..100).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        let queries = &vs[..25];
        let (batch, stats) = e.query_batch(queries, &pool);
        assert_eq!(stats.queries, 25);
        for (q, got) in queries.iter().zip(&batch) {
            let mut got: Vec<u32> = got.iter().map(|h| h.index).collect();
            got.sort_unstable();
            let mut single: Vec<u32> = e.query(q).iter().map(|h| h.index).collect();
            single.sort_unstable();
            assert_eq!(got, single);
        }
    }

    #[test]
    fn on_the_fly_hyperplanes_match_dense() {
        let pool = ThreadPool::new(1);
        let mut rng = SplitMix64::new(8);
        let vs: Vec<SparseVector> = (0..60).map(|_| random_vec(&mut rng, 64)).collect();
        let dense = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let lazy = Engine::new(
            EngineConfig::new(params(64), 100)
                .manual_merge()
                .with_on_the_fly_hyperplanes(),
            &pool,
        )
        .unwrap();
        dense.insert_batch(&vs, &pool).unwrap();
        lazy.insert_batch(&vs, &pool).unwrap();
        dense.merge_delta(&pool);
        lazy.merge_delta(&pool);
        for v in &vs {
            let mut a: Vec<u32> = dense.query(v).iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = lazy.query(v).iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn eta_bound_matches_paper_example() {
        // Static 1.4 ms, streaming 6 ms, slowdown 1.5 → η ≤ ~0.152.
        let eta = eta_bound(1.4, 6.0, 1.5);
        assert!((0.14..0.17).contains(&eta), "{eta}");
        // Delta faster than static → unbounded (clamped to 1).
        assert_eq!(eta_bound(2.0, 1.0, 1.5), 1.0);
    }

    #[test]
    fn knn_returns_sorted_top_k() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 200).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(12);
        let vs: Vec<SparseVector> = (0..120).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        e.merge_delta(&pool);
        for qid in [0u32, 33, 119] {
            let q = vs[qid as usize].clone();
            let resp = e
                .search(
                    &SearchRequest::query(q.clone()).top_k(5).with_stats(),
                    &pool,
                )
                .unwrap();
            let hits = resp.hits();
            assert!(hits.len() <= 5);
            assert!(!hits.is_empty());
            // Ascending by distance; self first (distance ~0).
            assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
            assert_eq!(hits[0].index, qid);
            assert!(hits[0].distance < 1e-3);
            // The k-NN answer is a prefix of the full candidate ranking.
            let full = e
                .search(&SearchRequest::query(q).top_k(usize::MAX), &pool)
                .unwrap();
            assert_eq!(&full.hits()[..hits.len()], hits);
            let stats = resp.stats.expect("requested stats");
            assert!(stats.totals.unique_candidates >= hits.len() as u64);
        }
    }

    #[test]
    fn knn_radius_override_caps_distance() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 200).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(22);
        let vs: Vec<SparseVector> = (0..150).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        let q = vs[0].clone();
        let uncapped = e
            .search(&SearchRequest::query(q.clone()).top_k(usize::MAX), &pool)
            .unwrap();
        let capped = e
            .search(
                &SearchRequest::query(q).top_k(usize::MAX).with_radius(0.5),
                &pool,
            )
            .unwrap();
        assert!(capped.hits().iter().all(|h| h.distance <= 0.5));
        // The capped ranking is exactly the uncapped one truncated at R.
        let expect: Vec<_> = uncapped
            .hits()
            .iter()
            .copied()
            .filter(|h| h.distance <= 0.5)
            .collect();
        assert_eq!(capped.hits(), expect.as_slice());
        assert!(uncapped.hits().len() > capped.hits().len());
    }

    #[test]
    fn knn_skips_deleted_points() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 50).manual_merge(), &pool).unwrap();
        let v = SparseVector::unit(vec![(1, 1.0), (2, 1.0)]).unwrap();
        let w = SparseVector::unit(vec![(1, 1.0), (2, 0.9)]).unwrap();
        let a = e.insert(v.clone(), &pool).unwrap();
        let b = e.insert(w, &pool).unwrap();
        e.delete(a);
        let resp = e.search(&SearchRequest::query(v).top_k(2), &pool).unwrap();
        assert!(resp.hits().iter().all(|h| h.index != a));
        assert!(resp.hits().iter().any(|h| h.index == b));
    }

    #[test]
    fn search_request_fields_drive_the_pipeline() {
        let pool = ThreadPool::new(2);
        let e = Engine::new(EngineConfig::new(params(64), 400).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(21);
        let vs: Vec<SparseVector> = (0..200).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs[..150], &pool).unwrap();
        e.merge_delta(&pool);
        e.insert_batch(&vs[150..], &pool).unwrap();

        let queries: Vec<SparseVector> = vs.iter().step_by(9).cloned().collect();
        let sorted = |hits: &[SearchHit]| {
            let mut ids: Vec<u32> = hits.iter().map(|h| h.index).collect();
            ids.sort_unstable();
            ids
        };

        // Batched pipeline, per-query pipeline, profiled run, and every
        // ablation strategy answer identically through one request type.
        let base = e
            .search(&SearchRequest::batch(queries.clone()).with_stats(), &pool)
            .unwrap();
        assert_eq!(base.stats.unwrap().queries, queries.len() as u64);
        let epoch = base.epoch.expect("single-node responses pin an epoch");
        assert_eq!(epoch.visible_points, 200);
        for req in [
            SearchRequest::batch(queries.clone()).per_query_pipeline(),
            SearchRequest::batch(queries.clone()).with_profiling(),
            SearchRequest::batch(queries.clone()).with_strategy(QueryStrategy::unoptimized()),
            SearchRequest::batch(queries.clone()).with_max_candidates(usize::MAX - 1),
        ] {
            let resp = e.search(&req, &pool).unwrap();
            assert_eq!(resp.results.len(), base.results.len());
            for (a, b) in resp.results.iter().zip(&base.results) {
                assert_eq!(sorted(a), sorted(b));
            }
            assert_eq!(resp.phase_timings.is_some(), req.profiles());
        }

        // Radius override: π reports every candidate, tiny radius only
        // near-exact ones; both remain subsets ordered consistently.
        let q = queries[0].clone();
        let wide = e
            .search(
                &SearchRequest::query(q.clone()).with_radius(std::f32::consts::PI),
                &pool,
            )
            .unwrap();
        let narrow = e
            .search(&SearchRequest::query(q.clone()).with_radius(1e-4), &pool)
            .unwrap();
        assert!(wide.hits().len() >= narrow.hits().len());
        assert!(narrow.hits().iter().all(|h| h.distance <= 1e-4));

        // Candidate budget caps Q3 work.
        let budgeted = e
            .search(
                &SearchRequest::query(q).with_max_candidates(1).with_stats(),
                &pool,
            )
            .unwrap();
        assert!(budgeted.stats.unwrap().totals.distance_computations <= 1);

        // Malformed requests error instead of panicking.
        let bad = SparseVector::unit(vec![(64, 1.0)]).unwrap();
        assert!(e.search(&SearchRequest::query(bad), &pool).is_err());
    }

    #[test]
    fn config_validation() {
        let pool = ThreadPool::new(1);
        assert!(Engine::new(EngineConfig::new(params(64), 0), &pool).is_err());
        assert!(Engine::new(EngineConfig::new(params(64), 10).with_eta(0.0), &pool).is_err());
        assert!(Engine::new(EngineConfig::new(params(64), 10).with_eta(1.5), &pool).is_err());
    }

    #[test]
    fn concurrent_insert_query_merge_smoke() {
        // Ingest, merges, deletes, and queries from four threads at once;
        // every pinned epoch must be internally consistent.
        let pool = ThreadPool::new(2);
        let e = Arc::new(
            Engine::new(EngineConfig::new(params(64), 4000).with_eta(0.05), &pool).unwrap(),
        );
        let mut rng = SplitMix64::new(13);
        let vs: Vec<SparseVector> = (0..2000).map(|_| random_vec(&mut rng, 64)).collect();
        let watermark = Arc::new(AtomicUsize::new(0));

        let writer = {
            let e = e.clone();
            let vs = vs.clone();
            let watermark = watermark.clone();
            std::thread::spawn(move || {
                let pool = ThreadPool::new(1);
                for chunk in vs.chunks(100) {
                    e.insert_batch(chunk, &pool).unwrap();
                    watermark.fetch_add(chunk.len(), Ordering::Release);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|t| {
                let e = e.clone();
                let vs = vs.clone();
                let watermark = watermark.clone();
                std::thread::spawn(move || {
                    let mut checked = 0u32;
                    while checked < 200 {
                        let info = e.epoch_info();
                        assert_eq!(info.visible_points, info.static_points + info.sealed_points);
                        let visible = watermark.load(Ordering::Acquire);
                        if visible == 0 {
                            continue;
                        }
                        let probe = (t * 37 + checked as usize * 13) % visible;
                        let hits = e.query(&vs[probe]);
                        assert!(
                            hits.iter().any(|h| h.index == probe as u32),
                            "probe {probe} lost during concurrent ingest"
                        );
                        assert!(hits.iter().all(|h| (h.index as usize) < e.len()));
                        checked += 1;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(e.len(), 2000);
        assert!(e.stats().merges >= 1, "auto-merges must have fired");
        for probe in [0usize, 999, 1999] {
            assert!(e.query(&vs[probe]).iter().any(|h| h.index == probe as u32));
        }
    }
    #[test]
    fn windowed_engine_retires_and_compacts() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(
            EngineConfig::new(params(64), 200)
                .manual_merge()
                .with_window(WindowSpec::Docs(50)),
            &pool,
        )
        .unwrap();
        let mut rng = SplitMix64::new(21);
        let vs: Vec<SparseVector> = (0..120).map(|_| random_vec(&mut rng, 64)).collect();
        for chunk in vs.chunks(30) {
            e.insert_batch(chunk, &pool).unwrap();
        }
        // Inserts advanced the watermark automatically: only the newest 50
        // stay live, as one range tombstone (no bitmap bits).
        assert_eq!(e.retired_below(), 70);
        assert_eq!(e.stats().live_points, 50);
        assert_eq!(e.stats().deleted_points, 0);
        assert!(e.vector(10).is_none(), "retired row must not resolve");
        assert!(e.vector(100).is_some());
        for (i, v) in vs.iter().enumerate() {
            let hits = e.query(v);
            if i < 70 {
                assert!(
                    hits.iter().all(|h| h.index != i as u32),
                    "retired point {i} surfaced"
                );
            } else {
                assert!(hits.iter().any(|h| h.index == i as u32));
            }
        }
        // The merge compacts: the static structure rebases at the
        // watermark and the dead prefix stops occupying memory.
        e.merge_delta(&pool);
        let info = e.epoch_info();
        assert_eq!(info.static_base, 70);
        assert_eq!(info.retired_below, 70);
        assert_eq!(info.static_points, 50);
        assert_eq!(e.stats().retired_pending_purge, 0);
        for (i, v) in vs.iter().enumerate().skip(70) {
            assert!(
                e.query(v).iter().any(|h| h.index == i as u32),
                "live point {i} lost by compaction"
            );
        }
        // Ids keep growing past the compaction; capacity counts residents.
        let id = e.insert(vs[0].clone(), &pool).unwrap();
        assert_eq!(id, 120);
    }

    #[test]
    fn windowed_answers_match_manual_delete_twin() {
        let pool = ThreadPool::new(1);
        let windowed = Engine::new(
            EngineConfig::new(params(64), 300)
                .manual_merge()
                .with_window(WindowSpec::Docs(40)),
            &pool,
        )
        .unwrap();
        let twin = Engine::new(EngineConfig::new(params(64), 300).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(22);
        let vs: Vec<SparseVector> = (0..150).map(|_| random_vec(&mut rng, 64)).collect();
        for (b, chunk) in vs.chunks(17).enumerate() {
            windowed.insert_batch(chunk, &pool).unwrap();
            twin.insert_batch(chunk, &pool).unwrap();
            for id in 0..windowed.retired_below() {
                twin.delete(id);
            }
            if b % 3 == 2 {
                windowed.merge_delta(&pool);
                twin.merge_delta(&pool);
            }
            for v in &vs[..((b + 1) * 17).min(vs.len())] {
                let key = |e: &Engine| {
                    let mut hits: Vec<(u32, u32)> = e
                        .query(v)
                        .iter()
                        .map(|h| (h.index, h.distance.to_bits()))
                        .collect();
                    hits.sort_unstable();
                    hits
                };
                assert_eq!(
                    key(&windowed),
                    key(&twin),
                    "windowed engine diverged from its delete twin at batch {b}"
                );
            }
        }
    }

    #[test]
    fn retire_to_is_monotone_and_clamped() {
        let pool = ThreadPool::new(1);
        let e = Engine::new(EngineConfig::new(params(64), 100).manual_merge(), &pool).unwrap();
        let mut rng = SplitMix64::new(23);
        let vs: Vec<SparseVector> = (0..30).map(|_| random_vec(&mut rng, 64)).collect();
        e.insert_batch(&vs, &pool).unwrap();
        assert!(e.retire_to(10).unwrap());
        assert_eq!(e.retired_below(), 10);
        // Monotone: a lower watermark is a no-op, not a rollback.
        assert!(!e.retire_to(5).unwrap());
        assert_eq!(e.retired_below(), 10);
        // Clamped to the assigned id range.
        assert!(e.retire_to(1_000).unwrap());
        assert_eq!(e.retired_below(), 30);
        assert!(!e.try_delete(3).unwrap(), "retired id is already dead");
        assert!(e.query(&vs[0]).is_empty());
    }
}
