//! Parallel radix-partition kernels and construction strategies.
//!
//! The static tables are built by the three-step partition of Kim et
//! al. \[21\] (paper Section 5.1.2): (1) histogram the bucket keys, (2)
//! prefix-sum the histogram into scatter offsets, (3) rescan and scatter
//! each item to its final slot. The histogram and scatter passes are
//! parallelized with per-thread private histograms and a cross-thread
//! prefix sum, so every item has a unique destination and the scatter is
//! lock-free.
//!
//! Three strategies reproduce the Figure 4 creation ablation:
//!
//! * [`BuildStrategy::OneLevel`] — one flat partition per table over all
//!   `2^k` buckets ("No optimizations"): TLB-hostile when `2^k` exceeds a
//!   few hundred partitions.
//! * [`BuildStrategy::TwoLevel`] — per table, partition on the high `k/2`
//!   bits and then counting-sort each first-level bucket on the low `k/2`
//!   bits ("+2 level hashtable"): only `2^(k/2)` partitions live at a time.
//! * [`BuildStrategy::TwoLevelShared`] — additionally share each
//!   first-level partition among all tables whose pair starts with the
//!   same function ("+shared tables"), reducing partition passes from
//!   `2L` to `L + m` (Steps I1–I3 of the paper).

use plsh_parallel::ThreadPool;

use crate::util::SharedSliceMut;

/// Which construction algorithm [`crate::StaticTables::build`] uses.
///
/// All strategies produce identical tables (asserted by tests); they differ
/// only in speed, which is what Figure 4 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStrategy {
    /// Flat single-level partition per table (baseline).
    OneLevel,
    /// Two-level partition per table, no sharing.
    TwoLevel,
    /// Two-level partition with shared first-level partitions (the PLSH
    /// contribution; default).
    #[default]
    TwoLevelShared,
}

/// Output of a partition pass: the permuted items plus bucket offsets
/// (`offsets.len() == num_buckets + 1`, `offsets[b]..offsets[b+1]` is the
/// slice of `perm` holding bucket `b`).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Item ids in bucket order (stable within a bucket).
    pub perm: Vec<u32>,
    /// Exclusive prefix offsets per bucket, with a trailing total.
    pub offsets: Vec<u32>,
}

/// Partitions the logical items `0..n` into `num_buckets` buckets.
///
/// `key_of(pos)` returns the bucket key of logical position `pos` (callers
/// close over the sketch matrix or a precomputed key array). The pass runs
/// the parallel three-step plan when the pool has more than one thread.
pub fn partition_identity<F>(
    n: usize,
    num_buckets: usize,
    key_of: F,
    pool: &ThreadPool,
) -> Partition
where
    F: Fn(usize) -> u32 + Sync,
{
    partition_impl(n, num_buckets, &key_of, None, pool)
}

/// Like [`partition_identity`] but permutes the caller's `items` array:
/// `items[pos]` moves to the slot dictated by `key_of(pos)`.
pub fn partition_items<F>(
    items: &[u32],
    num_buckets: usize,
    key_of: F,
    pool: &ThreadPool,
) -> Partition
where
    F: Fn(usize) -> u32 + Sync,
{
    partition_impl(items.len(), num_buckets, &key_of, Some(items), pool)
}

fn partition_impl<F>(
    n: usize,
    num_buckets: usize,
    key_of: &F,
    items: Option<&[u32]>,
    pool: &ThreadPool,
) -> Partition
where
    F: Fn(usize) -> u32 + Sync,
{
    assert!(num_buckets >= 1);
    let t = pool.num_threads();
    if t == 1 || n < 4096 {
        return partition_serial(n, num_buckets, key_of, items);
    }

    let ranges = pool.even_ranges(n);
    // hist[t * num_buckets + b]: thread-private counts.
    let mut hist = vec![0u32; t * num_buckets];
    {
        let shared_hist = SharedSliceMut::new(&mut hist);
        let shared_hist = &shared_hist;
        let ranges_ref = &ranges;
        pool.broadcast(|tid| {
            let mut local = vec![0u32; num_buckets];
            for pos in ranges_ref[tid].clone() {
                local[key_of(pos) as usize] += 1;
            }
            let base = tid * num_buckets;
            for (b, &c) in local.iter().enumerate() {
                // SAFETY: each thread owns its private stripe of `hist`.
                unsafe { shared_hist.write(base + b, c) };
            }
        });
    }

    // Cross-thread exclusive prefix in bucket-major order: the final slot
    // of (bucket b, thread t) starts after all earlier buckets and after
    // the same bucket's items from earlier threads (Step 2 of [21]).
    let mut offsets = Vec::with_capacity(num_buckets + 1);
    let mut running = 0u32;
    for b in 0..num_buckets {
        offsets.push(running);
        for tid in 0..t {
            let idx = tid * num_buckets + b;
            let c = hist[idx];
            hist[idx] = running;
            running += c;
        }
    }
    offsets.push(running);
    debug_assert_eq!(running as usize, n);

    let mut perm = vec![0u32; n];
    {
        let shared_perm = SharedSliceMut::new(&mut perm);
        let shared_perm = &shared_perm;
        let hist_ref = &hist;
        let ranges_ref = &ranges;
        pool.broadcast(|tid| {
            // Private cursor copy: this thread's start offset per bucket.
            let base = tid * num_buckets;
            let mut cursors: Vec<u32> = hist_ref[base..base + num_buckets].to_vec();
            for pos in ranges_ref[tid].clone() {
                let b = key_of(pos) as usize;
                let dst = cursors[b];
                cursors[b] += 1;
                let value = items.map_or(pos as u32, |it| it[pos]);
                // SAFETY: destination slots are globally unique by the
                // prefix-sum construction.
                unsafe { shared_perm.write(dst as usize, value) };
            }
        });
    }

    Partition { perm, offsets }
}

fn partition_serial<F>(n: usize, num_buckets: usize, key_of: &F, items: Option<&[u32]>) -> Partition
where
    F: Fn(usize) -> u32 + Sync,
{
    let mut counts = vec![0u32; num_buckets];
    for pos in 0..n {
        counts[key_of(pos) as usize] += 1;
    }
    let offsets = plsh_parallel::exclusive_prefix_sum(&counts);
    let mut cursors = offsets[..num_buckets].to_vec();
    let mut perm = vec![0u32; n];
    for pos in 0..n {
        let b = key_of(pos) as usize;
        perm[cursors[b] as usize] = items.map_or(pos as u32, |it| it[pos]);
        cursors[b] += 1;
    }
    Partition { perm, offsets }
}

/// Stable counting sort of one first-level bucket by its second-level keys
/// (Step I3): reads `src_items`/`src_keys`, writes sorted items into
/// `dst_items`, and records per-second-level-bucket counts in `counts`
/// (length `num_buckets`, pre-zeroed by this function).
pub fn counting_sort_into(
    src_items: &[u32],
    src_keys: &[u32],
    num_buckets: usize,
    dst_items: &mut [u32],
    counts: &mut [u32],
) {
    debug_assert_eq!(src_items.len(), src_keys.len());
    debug_assert_eq!(src_items.len(), dst_items.len());
    debug_assert_eq!(counts.len(), num_buckets);
    counts.iter_mut().for_each(|c| *c = 0);
    for &k in src_keys {
        counts[k as usize] += 1;
    }
    let mut cursors = vec![0u32; num_buckets];
    let mut running = 0u32;
    for (c, cur) in counts.iter().zip(cursors.iter_mut()) {
        *cur = running;
        running += c;
    }
    for (&item, &k) in src_items.iter().zip(src_keys) {
        let cur = &mut cursors[k as usize];
        dst_items[*cur as usize] = item;
        *cur += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(p: &Partition, keys: &[u32], num_buckets: usize, items: Option<&[u32]>) {
        assert_eq!(p.offsets.len(), num_buckets + 1);
        assert_eq!(p.perm.len(), keys.len());
        assert_eq!(*p.offsets.last().unwrap() as usize, keys.len());
        // Offsets monotone.
        assert!(p.offsets.windows(2).all(|w| w[0] <= w[1]));
        // Every bucket slice contains exactly the items with that key, in
        // stable (input) order.
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); num_buckets];
        for (pos, &k) in keys.iter().enumerate() {
            let value = items.map_or(pos as u32, |it| it[pos]);
            expected[k as usize].push(value);
        }
        for (b, expect) in expected.iter().enumerate() {
            let lo = p.offsets[b] as usize;
            let hi = p.offsets[b + 1] as usize;
            assert_eq!(&p.perm[lo..hi], &expect[..], "bucket {b}");
        }
    }

    #[test]
    fn serial_partition_small() {
        let keys = vec![3u32, 1, 3, 0, 1, 1];
        let p = partition_identity(keys.len(), 4, |pos| keys[pos], &ThreadPool::new(1));
        check_partition(&p, &keys, 4, None);
        assert_eq!(p.perm, vec![3, 1, 4, 5, 0, 2]);
        assert_eq!(p.offsets, vec![0, 1, 4, 4, 6]);
    }

    #[test]
    fn parallel_partition_matches_serial() {
        // Big enough to trigger the parallel path (>= 4096 items).
        let n = 20_000usize;
        let keys: Vec<u32> = (0..n)
            .map(|i| ((i * 2654435761) >> 7) as u32 % 64)
            .collect();
        let serial = partition_identity(n, 64, |pos| keys[pos], &ThreadPool::new(1));
        let parallel = partition_identity(n, 64, |pos| keys[pos], &ThreadPool::new(4));
        assert_eq!(serial.offsets, parallel.offsets);
        assert_eq!(
            serial.perm, parallel.perm,
            "parallel scatter must be stable"
        );
        check_partition(&parallel, &keys, 64, None);
    }

    #[test]
    fn partition_items_permutes_values() {
        let keys = vec![1u32, 0, 1];
        let items = vec![100u32, 200, 300];
        let p = partition_items(&items, 2, |pos| keys[pos], &ThreadPool::new(1));
        check_partition(&p, &keys, 2, Some(&items));
        assert_eq!(p.perm, vec![200, 100, 300]);
    }

    #[test]
    fn single_bucket_is_identity() {
        let n = 100;
        let p = partition_identity(n, 1, |_| 0, &ThreadPool::new(1));
        assert_eq!(p.perm, (0..n as u32).collect::<Vec<_>>());
        assert_eq!(p.offsets, vec![0, n as u32]);
    }

    #[test]
    fn empty_input() {
        let p = partition_identity(0, 8, |_| 0, &ThreadPool::new(2));
        assert!(p.perm.is_empty());
        assert_eq!(p.offsets, vec![0u32; 9]);
    }

    #[test]
    fn counting_sort_sorts_and_counts() {
        let items = vec![10u32, 11, 12, 13, 14];
        let keys = vec![2u32, 0, 2, 1, 0];
        let mut dst = vec![0u32; 5];
        let mut counts = vec![99u32; 3];
        counting_sort_into(&items, &keys, 3, &mut dst, &mut counts);
        assert_eq!(dst, vec![11, 14, 13, 10, 12]);
        assert_eq!(counts, vec![2, 1, 2]);
    }

    #[test]
    fn counting_sort_empty_range() {
        let mut dst: Vec<u32> = vec![];
        let mut counts = vec![7u32; 4];
        counting_sort_into(&[], &[], 4, &mut dst, &mut counts);
        assert_eq!(counts, vec![0; 4]);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn partition_is_a_stable_permutation(
                keys in proptest::collection::vec(0u32..32, 0..500),
                threads in 1usize..5,
            ) {
                let p = partition_identity(
                    keys.len(), 32, |pos| keys[pos], &ThreadPool::new(threads));
                check_partition(&p, &keys, 32, None);
                // perm is a permutation of 0..n.
                let mut sorted = p.perm.clone();
                sorted.sort_unstable();
                let identity: Vec<u32> = (0..keys.len() as u32).collect();
                prop_assert_eq!(sorted, identity);
            }

            #[test]
            fn counting_sort_agrees_with_stable_sort(
                pairs in proptest::collection::vec((0u32..1000, 0u32..16), 0..300),
            ) {
                let items: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
                let keys: Vec<u32> = pairs.iter().map(|&(_, k)| k).collect();
                let mut dst = vec![0u32; items.len()];
                let mut counts = vec![0u32; 16];
                counting_sort_into(&items, &keys, 16, &mut dst, &mut counts);

                let mut reference: Vec<(u32, u32)> =
                    keys.iter().cloned().zip(items.iter().cloned()).collect();
                reference.sort_by_key(|&(k, _)| k); // stable
                let expect: Vec<u32> = reference.into_iter().map(|(_, i)| i).collect();
                prop_assert_eq!(dst, expect);
                prop_assert_eq!(counts.iter().sum::<u32>() as usize, items.len());
            }
        }
    }
}
