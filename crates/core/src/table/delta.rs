//! Insert-optimized streaming delta tables (paper Section 6.1, Figure 3b).
//!
//! New points are buffered here until a merge folds them into the static
//! structure. Each of the `L` tables maps a `k`-bit bucket key to a
//! growable bin of point ids. Inserts are parallelized **across tables**
//! (the bins of different tables are independent), exactly as the paper
//! notes: "these insertions can be done independently for each table".
//!
//! Two bin layouts are provided:
//!
//! * [`DeltaLayout::Direct`] — a dense `2^k`-slot array of vectors, the
//!   paper's literal structure ("a set of `2^k × L` resizeable vectors").
//!   Best when `2^k` is modest relative to the delta population.
//! * [`DeltaLayout::Sparse`] — a hash map holding only non-empty bins, an
//!   engineering alternative for large `k` where the dense array of empty
//!   vector headers would dominate memory.
//!
//! Both layouts answer bucket probes identically (tested); queries against
//! a delta are slower than against static tables either way, which is why
//! the engine bounds the delta fraction `η` (Section 6.3).

use std::collections::HashMap;

use plsh_parallel::ThreadPool;

use crate::hash::{allpairs, SketchMatrix};

/// Bin storage layout for the delta tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaLayout {
    /// Dense `2^k` array of bins (paper layout).
    Direct,
    /// Only non-empty bins, in a hash map.
    Sparse,
    /// Picks [`Direct`](Self::Direct) or [`Sparse`](Self::Sparse) per
    /// delta *generation* from its expected population (default).
    ///
    /// The paper's engine owns one long-lived delta structure, where the
    /// dense `2^k × L` bin array amortizes over every merge cycle. The
    /// streaming engine instead seals short-lived generations, and a
    /// sparsely-populated generation (say a 1-point insert at `k = 14`,
    /// `L = 120`) would pay megabytes of empty dense bin headers. The
    /// adaptive layout keeps the paper's dense bins whenever the
    /// generation can plausibly fill them and falls back to the hash-map
    /// bins otherwise; both layouts answer probes identically (tested).
    #[default]
    Adaptive,
}

impl DeltaLayout {
    /// Resolves `Adaptive` for a generation expected to hold
    /// `expected_points`: dense bins when they are cheap (`2^k ≤ 1024`) or
    /// when expected occupancy reaches 1/8 of the bins, sparse otherwise.
    /// `Direct` and `Sparse` resolve to themselves.
    pub fn resolve(self, expected_points: usize, half_bits: u32) -> DeltaLayout {
        match self {
            DeltaLayout::Adaptive => {
                let bins = 1usize << (2 * half_bits);
                if bins <= 1024 || expected_points.saturating_mul(8) >= bins {
                    DeltaLayout::Direct
                } else {
                    DeltaLayout::Sparse
                }
            }
            concrete => concrete,
        }
    }
}

#[derive(Debug, Clone)]
enum Bins {
    Direct(Vec<Vec<u32>>),
    Sparse(HashMap<u32, Vec<u32>>),
}

impl Bins {
    fn new(layout: DeltaLayout, buckets: usize) -> Self {
        match layout {
            DeltaLayout::Direct => Bins::Direct(vec![Vec::new(); buckets]),
            DeltaLayout::Sparse => Bins::Sparse(HashMap::new()),
            DeltaLayout::Adaptive => unreachable!("resolved in DeltaTables::new"),
        }
    }

    #[inline]
    fn push(&mut self, key: u32, id: u32) {
        match self {
            Bins::Direct(v) => v[key as usize].push(id),
            Bins::Sparse(m) => m.entry(key).or_default().push(id),
        }
    }

    #[inline]
    fn get(&self, key: u32) -> &[u32] {
        match self {
            Bins::Direct(v) => &v[key as usize],
            Bins::Sparse(m) => m.get(&key).map_or(&[], |b| b.as_slice()),
        }
    }

    fn clear(&mut self) {
        match self {
            Bins::Direct(v) => v.iter_mut().for_each(Vec::clear),
            Bins::Sparse(m) => m.clear(),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Bins::Direct(v) => {
                v.len() * std::mem::size_of::<Vec<u32>>()
                    + v.iter().map(|b| b.capacity() * 4).sum::<usize>()
            }
            Bins::Sparse(m) => m.values().map(|b| 16 + b.capacity() * 4).sum::<usize>(),
        }
    }
}

/// The streaming delta structure: `L` tables of growable bins holding the
/// point ids inserted since the last merge.
#[derive(Debug, Clone)]
pub struct DeltaTables {
    m: u32,
    half_bits: u32,
    layout: DeltaLayout,
    tables: Vec<Bins>,
    len: usize,
}

impl DeltaTables {
    /// Creates an empty delta for `m` half-key functions of `half_bits`
    /// bits each. An [`DeltaLayout::Adaptive`] layout is resolved here for
    /// an unknown population; callers that know how many points are coming
    /// should use [`with_expected`](Self::with_expected).
    pub fn new(m: u32, half_bits: u32, layout: DeltaLayout) -> Self {
        Self::with_expected(m, half_bits, layout, 0)
    }

    /// Like [`new`](Self::new), resolving an adaptive layout against the
    /// expected number of points this delta will hold.
    pub fn with_expected(
        m: u32,
        half_bits: u32,
        layout: DeltaLayout,
        expected_points: usize,
    ) -> Self {
        let layout = layout.resolve(expected_points, half_bits);
        let l = allpairs::num_tables(m) as usize;
        let buckets = 1usize << (2 * half_bits);
        Self {
            m,
            half_bits,
            layout,
            tables: (0..l).map(|_| Bins::new(layout, buckets)).collect(),
            len: 0,
        }
    }

    /// Layout in use.
    pub fn layout(&self) -> DeltaLayout {
        self.layout
    }

    /// Number of points currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tables `L`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Inserts the points with ids `ids` whose half-keys are rows of
    /// `sketches`, parallelizing over tables.
    ///
    /// The sketch row of point `ids[i]` must be `sketches.row(ids[i])` —
    /// the engine stores sketches for static and delta points in one
    /// matrix, so ids double as sketch row indices.
    pub fn insert_batch(&mut self, sketches: &SketchMatrix, ids: &[u32], pool: &ThreadPool) {
        assert!(ids.iter().all(|&id| (id as usize) < sketches.num_points()));
        let m = self.m;
        let half_bits = self.half_bits;
        // Tag each table with its pair once, then hand (pair, bins) tasks
        // to the pool: each task owns one table's bins exclusively.
        let tasks: Vec<((u32, u32), &mut Bins)> =
            allpairs::pairs(m).zip(self.tables.iter_mut()).collect();
        pool.parallel_tasks(tasks, |((a, b), bins)| {
            for &id in ids {
                let key = allpairs::compose_key(
                    sketches.half_key(id, a),
                    sketches.half_key(id, b),
                    half_bits,
                );
                bins.push(key, id);
            }
        });
        self.len += ids.len();
    }

    /// The buffered point ids in bucket `key` of table `l`.
    #[inline]
    pub fn bucket(&self, l: usize, key: u32) -> &[u32] {
        self.tables[l].get(key)
    }

    /// Empties every bin (after a merge or a node retirement).
    pub fn clear(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
        self.len = 0;
    }

    /// Approximate bytes held by bins.
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(Bins::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Hyperplanes;
    use crate::rng::SplitMix64;
    use crate::sparse::{CrsMatrix, SparseVector};

    fn setup(n: usize, m: u32, half_bits: u32) -> (SketchMatrix, ThreadPool) {
        let pool = ThreadPool::new(2);
        let mut rng = SplitMix64::new(11);
        let dim = 64u32;
        let mut corpus = CrsMatrix::new(dim);
        for _ in 0..n {
            let pairs = vec![
                (rng.next_below(dim as u64) as u32, 1.0f32),
                (rng.next_below(dim as u64) as u32, 0.5),
            ];
            corpus
                .push(
                    &SparseVector::unit(pairs)
                        .unwrap_or_else(|_| SparseVector::unit(vec![(0, 1.0)]).unwrap()),
                )
                .unwrap();
        }
        let planes = Hyperplanes::new_dense(dim, m * half_bits, 4, &pool);
        let mut sk = SketchMatrix::new(m, half_bits);
        sk.append_from(&corpus, &planes, 0, &pool, true);
        (sk, pool)
    }

    #[test]
    fn insert_places_points_in_expected_buckets() {
        let (sk, pool) = setup(50, 4, 3);
        let mut delta = DeltaTables::new(4, 3, DeltaLayout::Direct);
        let ids: Vec<u32> = (0..50).collect();
        delta.insert_batch(&sk, &ids, &pool);
        assert_eq!(delta.len(), 50);

        for (l, (a, b)) in allpairs::pairs(4).enumerate() {
            let mut found = 0;
            for key in 0..(1u32 << 6) {
                for &id in delta.bucket(l, key) {
                    let expect = allpairs::compose_key(sk.half_key(id, a), sk.half_key(id, b), 3);
                    assert_eq!(key, expect);
                    found += 1;
                }
            }
            assert_eq!(found, 50, "table {l} must hold every inserted point");
        }
    }

    #[test]
    fn direct_and_sparse_layouts_agree() {
        let (sk, pool) = setup(80, 5, 2);
        let ids: Vec<u32> = (0..80).collect();
        let mut direct = DeltaTables::new(5, 2, DeltaLayout::Direct);
        let mut sparse = DeltaTables::new(5, 2, DeltaLayout::Sparse);
        direct.insert_batch(&sk, &ids, &pool);
        sparse.insert_batch(&sk, &ids, &pool);
        assert_eq!(direct.num_tables(), sparse.num_tables());
        for l in 0..direct.num_tables() {
            for key in 0..(1u32 << 4) {
                assert_eq!(
                    direct.bucket(l, key),
                    sparse.bucket(l, key),
                    "l={l} key={key}"
                );
            }
        }
    }

    #[test]
    fn incremental_batches_accumulate() {
        let (sk, pool) = setup(30, 3, 3);
        let mut delta = DeltaTables::new(3, 3, DeltaLayout::Direct);
        delta.insert_batch(&sk, &(0..10).collect::<Vec<_>>(), &pool);
        delta.insert_batch(&sk, &(10..30).collect::<Vec<_>>(), &pool);
        assert_eq!(delta.len(), 30);
        let total: usize = (0..(1u32 << 6)).map(|key| delta.bucket(0, key).len()).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn clear_resets_everything() {
        let (sk, pool) = setup(20, 3, 2);
        let mut delta = DeltaTables::new(3, 2, DeltaLayout::Sparse);
        delta.insert_batch(&sk, &(0..20).collect::<Vec<_>>(), &pool);
        delta.clear();
        assert!(delta.is_empty());
        for l in 0..delta.num_tables() {
            for key in 0..16 {
                assert!(delta.bucket(l, key).is_empty());
            }
        }
        // Reusable after clear.
        delta.insert_batch(&sk, &[5, 6], &pool);
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn bin_order_is_insertion_order() {
        let (sk, pool1) = setup(40, 2, 1);
        let mut delta = DeltaTables::new(2, 1, DeltaLayout::Direct);
        delta.insert_batch(&sk, &(0..40).collect::<Vec<_>>(), &pool1);
        for key in 0..4u32 {
            let bin = delta.bucket(0, key);
            assert!(bin.windows(2).all(|w| w[0] < w[1]), "ids must stay ordered");
        }
    }

    #[test]
    fn memory_estimate_nonzero_after_inserts() {
        let (sk, pool) = setup(20, 3, 2);
        for layout in [DeltaLayout::Direct, DeltaLayout::Sparse] {
            let mut delta = DeltaTables::new(3, 2, layout);
            delta.insert_batch(&sk, &(0..20).collect::<Vec<_>>(), &pool);
            assert!(delta.memory_bytes() > 0);
        }
    }
}
