//! Hash-table storage: static partitioned tables and streaming delta tables.
//!
//! * [`build`] — the parallel histogram → prefix-sum → scatter radix
//!   partition and the three construction strategies of the Figure 4
//!   ablation (one-level, two-level, two-level with shared first-level
//!   partitions).
//! * [`StaticTables`] — the read-optimized contiguous-array layout of
//!   Section 5.1 (Figure 3a).
//! * [`DeltaTables`] — the insert-optimized growable-bin layout of
//!   Section 6.1 (Figure 3b).
//! * [`DeltaGeneration`] — a sealed, immutable run of streamed points
//!   (rows + sketches + delta bins) published to readers via epoch swap.

pub mod build;
mod delta;
mod generation;
mod static_tables;

pub use build::BuildStrategy;
pub use delta::{DeltaLayout, DeltaTables};
pub use generation::DeltaGeneration;
pub use static_tables::{BuildTimings, MergeStepper, StaticTables};
