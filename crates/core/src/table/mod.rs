//! Hash-table storage: static partitioned tables and streaming delta tables.
//!
//! * [`build`] — the parallel histogram → prefix-sum → scatter radix
//!   partition and the three construction strategies of the Figure 4
//!   ablation (one-level, two-level, two-level with shared first-level
//!   partitions).
//! * [`StaticTables`] — the read-optimized contiguous-array layout of
//!   Section 5.1 (Figure 3a).
//! * [`DeltaTables`] — the insert-optimized growable-bin layout of
//!   Section 6.1 (Figure 3b).

pub mod build;
mod delta;
mod static_tables;

pub use build::BuildStrategy;
pub use delta::{DeltaLayout, DeltaTables};
pub use static_tables::{BuildTimings, StaticTables};
