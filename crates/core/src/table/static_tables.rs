//! Read-optimized static LSH tables (paper Section 5.1, Figure 3a).
//!
//! Each of the `L` tables is a contiguous `entries` array of all `N` point
//! ids partitioned by bucket, plus a `2^k + 1` offsets array: bucket `key`
//! owns `entries[offsets[key]..offsets[key+1]]`. No pointers, no chains —
//! a bucket lookup is two offset reads and one contiguous slice.

use std::sync::Arc;
use std::time::{Duration, Instant};

use plsh_parallel::ThreadPool;

use crate::hash::{allpairs, SketchMatrix};
use crate::table::build::{self, BuildStrategy, Partition};
use crate::table::generation::DeltaGeneration;
use crate::util::SharedSliceMut;

/// Wall time spent in each construction step (Figure 6 instrumentation).
///
/// Step labels follow the paper: I1 = first-level partitions, I2 =
/// second-level key permutation, I3 = second-level partitions. The
/// one-level strategy reports its single flat partition as I1.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct BuildTimings {
    /// Step I1 time.
    pub step_i1: Duration,
    /// Step I2 time.
    pub step_i2: Duration,
    /// Step I3 time.
    pub step_i3: Duration,
}

impl BuildTimings {
    /// Total insertion time (excluding hashing, which the engine times
    /// separately).
    pub fn total(&self) -> Duration {
        self.step_i1 + self.step_i2 + self.step_i3
    }
}

/// One static table: the pair of half-key functions it indexes plus its
/// partitioned storage.
#[derive(Debug, Clone)]
struct StaticTable {
    /// `(a, b)` half-key function pair, `a < b`.
    pair: (u32, u32),
    /// `2^k + 1` bucket offsets.
    offsets: Vec<u32>,
    /// All `N` point ids, grouped by bucket.
    entries: Vec<u32>,
}

/// The full set of `L` static tables over points `0..n`.
#[derive(Debug, Clone)]
pub struct StaticTables {
    m: u32,
    half_bits: u32,
    n: u32,
    tables: Vec<StaticTable>,
}

impl StaticTables {
    /// Builds all `L = m(m−1)/2` tables from the points' sketches.
    ///
    /// The produced tables are identical for every [`BuildStrategy`]; the
    /// strategy only selects the construction algorithm (Figure 4).
    pub fn build(sketches: &SketchMatrix, strategy: BuildStrategy, pool: &ThreadPool) -> Self {
        Self::build_prefix(sketches, sketches.num_points(), strategy, pool)
    }

    /// Builds tables over only the first `n` sketched points.
    ///
    /// The engine uses this to keep points that are still in the delta
    /// table out of the static structure.
    pub fn build_prefix(
        sketches: &SketchMatrix,
        n: usize,
        strategy: BuildStrategy,
        pool: &ThreadPool,
    ) -> Self {
        Self::build_instrumented(sketches, n, strategy, pool).0
    }

    /// Like [`build_prefix`](Self::build_prefix) but also reports the wall
    /// time spent in each construction step (Figure 6).
    pub fn build_instrumented(
        sketches: &SketchMatrix,
        n: usize,
        strategy: BuildStrategy,
        pool: &ThreadPool,
    ) -> (Self, BuildTimings) {
        assert!(n <= sketches.num_points());
        let m = sketches.m();
        let half_bits = sketches.half_bits();
        let (tables, timings) = match strategy {
            BuildStrategy::OneLevel => build_one_level(sketches, n, pool),
            BuildStrategy::TwoLevel => build_two_level(sketches, n, false, pool),
            BuildStrategy::TwoLevelShared => build_two_level(sketches, n, true, pool),
        };
        (
            Self {
                m,
                half_bits,
                n: n as u32,
                tables,
            },
            timings,
        )
    }

    /// Number of tables `L`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexed points `N`.
    pub fn num_points(&self) -> usize {
        self.n as usize
    }

    /// Bits per half key (`k/2`).
    pub fn half_bits(&self) -> u32 {
        self.half_bits
    }

    /// Number of half-key functions `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The half-key function pair of table `l`.
    pub fn pair(&self, l: usize) -> (u32, u32) {
        self.tables[l].pair
    }

    /// The point ids in bucket `key` of table `l`.
    #[inline]
    pub fn bucket(&self, l: usize, key: u32) -> &[u32] {
        let t = &self.tables[l];
        let lo = t.offsets[key as usize] as usize;
        let hi = t.offsets[key as usize + 1] as usize;
        &t.entries[lo..hi]
    }

    /// Hints the hardware to pull bucket `key` of table `l` into cache
    /// ahead of [`bucket`](Self::bucket) — the Step Q2 analogue of the
    /// candidate-loop row prefetch (Section 5.2.2): all `L` keys are known
    /// after Q1, so the next table's bucket can stream in while the current
    /// one is scanned.
    #[inline]
    pub fn prefetch_bucket(&self, l: usize, key: u32) {
        let t = &self.tables[l];
        let lo = t.offsets[key as usize] as usize;
        if let Some(first) = t.entries.get(lo) {
            crate::util::prefetch_read(first);
        }
    }

    /// Hints the hardware to pull the **offsets slot** of bucket `key` of
    /// table `l` into cache. Paired with [`prefetch_bucket`](Self::prefetch_bucket)
    /// in the batched pipeline's cross-query sweep: the offsets lines are
    /// requested first (non-blocking), then the second sweep reads them —
    /// by then largely in flight, with independent iterations overlapping
    /// the remaining latency — and prefetches the entry lines they point
    /// at.
    #[inline]
    pub fn prefetch_offsets(&self, l: usize, key: u32) {
        crate::util::prefetch_read(&self.tables[l].offsets[key as usize]);
    }

    /// Total bytes held by offsets and entries: `(L·N + (2^k+1)·L)·4`,
    /// matching Eq. 7.4 up to the `+1` sentinel per table.
    pub fn memory_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| (t.offsets.len() + t.entries.len()) * 4)
            .sum()
    }

    /// Tables below this total footprint skip huge-page advice entirely:
    /// each per-table array would fall under the kernel's 2 MB huge-page
    /// granularity anyway (the per-array no-op check in
    /// `util::advise_huge_pages`), so issuing the hints would only add
    /// `2·L` wasted `madvise` syscalls to every merge publish path.
    pub const HUGE_PAGE_MIN_TABLE_BYTES: usize = 8 << 20;

    /// Issues transparent-huge-page hints for every table's storage
    /// (the "+large pages" lever of Figure 5 applied to table arrays).
    /// Gated behind [`Self::HUGE_PAGE_MIN_TABLE_BYTES`]; returns the
    /// number of hints actually issued.
    pub fn advise_huge_pages(&self) -> usize {
        if self.memory_bytes() < Self::HUGE_PAGE_MIN_TABLE_BYTES {
            return 0;
        }
        let mut issued = 0;
        for t in &self.tables {
            issued += usize::from(crate::util::advise_huge_pages(&t.offsets));
            issued += usize::from(crate::util::advise_huge_pages(&t.entries));
        }
        issued
    }

    /// Builds the next static epoch by **merging** a previous epoch's
    /// tables with sealed delta generations, instead of re-sorting every
    /// point from its sketches.
    ///
    /// Per table (one work-stealing task each; the `L` tables are
    /// independent):
    ///
    /// 1. count surviving entries per bucket — the previous epoch's
    ///    entries are already grouped by bucket (a linear filtering scan
    ///    that drops ids whose bit is set in `purge`), and each sealed
    ///    generation's entries are radix-counted by composing their bucket
    ///    key from the generation's stored sketches;
    /// 2. turn the histogram into bucket offsets with
    ///    [`plsh_parallel::exclusive_prefix_sum`];
    /// 3. scatter: previous-epoch survivors first, then each generation in
    ///    sealed order — every bucket stays sorted by global id, exactly
    ///    as a from-scratch rebuild would order it (generation ids are
    ///    strictly larger than static ids).
    ///
    /// `n` is the row count of the new static corpus (previous static rows
    /// plus every generation's rows — purged ids keep their row slot so
    /// ids stay stable; they are simply absent from all buckets).
    ///
    /// `purge` is a snapshot of the deletion bitvector anchored at
    /// `purge_base` (bit `i` covers global id `purge_base + i`): set ⇒ the
    /// id is dropped from every bucket. Taking it as an explicit snapshot
    /// keeps the decision consistent across all `L` tables even while
    /// concurrent `delete` calls keep landing.
    ///
    /// `retire_below` is the sliding-window compaction cut: every id below
    /// it (however it reached a bucket) is dropped in the same pass — this
    /// is how window retirement rides the radix-partition filter for free.
    /// Pass `retire_below == purge_base` for a merge without compaction.
    #[allow(clippy::too_many_arguments)]
    pub fn merge_generations(
        prev: Option<&StaticTables>,
        m: u32,
        half_bits: u32,
        n: usize,
        gens: &[Arc<DeltaGeneration>],
        purge: &[u64],
        purge_base: u32,
        retire_below: u32,
        pool: &ThreadPool,
    ) -> Self {
        if let Some(p) = prev {
            debug_assert_eq!((p.m, p.half_bits), (m, half_bits));
        }
        let ctx = MergeCtx::new(prev, gens, purge, half_bits, purge_base, retire_below);
        let ctx = &ctx;
        let tables = pool.parallel_map(allpairs::pairs(m).enumerate(), |(l, pair)| {
            let mut table = TableMerge::new(l, pair, ctx.buckets);
            // Unbounded budgets: each phase completes in a single advance,
            // so this runs the exact same code as the stepped merge — the
            // two are bit-identical by construction.
            while table.advance(ctx, usize::MAX, usize::MAX) {}
            table.into_table()
        });

        Self {
            m,
            half_bits,
            n: n as u32,
            tables,
        }
    }
}

/// Shared, read-only inputs of one merge: the previous epoch, the sealed
/// generations, and the purge snapshot.
struct MergeCtx<'a> {
    prev: Option<&'a StaticTables>,
    gens: &'a [Arc<DeltaGeneration>],
    purge: &'a [u64],
    /// Whether anything at all can be dropped — a purge bit is set or the
    /// retirement cut advanced. When nothing can (the common case between
    /// deletions), counting collapses to bucket lengths and the previous
    /// epoch's scatter to per-bucket `memcpy`s — the merge's dominant cost
    /// drops from `L·N` bitmap tests to `L` block copies.
    filters: bool,
    /// Global id bit 0 of `purge` covers (the epoch's static base).
    purge_base: u32,
    /// Window compaction cut: ids below this are dropped from every bucket.
    retire_below: u32,
    half_bits: u32,
    buckets: usize,
}

impl<'a> MergeCtx<'a> {
    fn new(
        prev: Option<&'a StaticTables>,
        gens: &'a [Arc<DeltaGeneration>],
        purge: &'a [u64],
        half_bits: u32,
        purge_base: u32,
        retire_below: u32,
    ) -> Self {
        debug_assert!(retire_below >= purge_base);
        Self {
            prev,
            gens,
            purge,
            filters: retire_below > purge_base || purge.iter().any(|&w| w != 0),
            purge_base,
            retire_below,
            half_bits,
            buckets: 1usize << (2 * half_bits),
        }
    }

    #[inline]
    fn dropped(&self, id: u32) -> bool {
        if id < self.retire_below {
            return true; // retired by the window cut
        }
        let off = id - self.purge_base;
        self.purge
            .get((off >> 6) as usize)
            .is_some_and(|w| w & (1u64 << (off & 63)) != 0)
    }
}

/// Where one table's resumable merge currently stands. Phases run in
/// declaration order; the bucket/row cursors persist across `advance`
/// calls so work can stop after any bounded slice.
enum MergePhase {
    /// Step 1a: filter-count the previous epoch's buckets.
    CountPrev { next_bucket: usize },
    /// Step 1b: radix-count each generation's rows by composed key.
    CountGens { gen: usize, row: usize },
    /// Step 2: prefix-sum the histogram, allocate entries, seed cursors.
    Offsets,
    /// Step 3a: scatter previous-epoch survivors bucket by bucket.
    ScatterPrev { next_bucket: usize },
    /// Step 3b: scatter each generation's survivors in sealed order.
    ScatterGens { gen: usize, row: usize },
    /// All entries written; `into_table` may consume the state.
    Done,
}

/// The resumable merge of a single static table — the `MergeStep` state
/// machine behind both [`StaticTables::merge_generations`] (unbounded
/// budgets inside a parallel map) and [`MergeStepper`] (bounded budgets
/// interleaved with pacing checks).
struct TableMerge {
    l: usize,
    pair: (u32, u32),
    counts: Vec<u32>,
    offsets: Vec<u32>,
    entries: Vec<u32>,
    cursor: Vec<u32>,
    phase: MergePhase,
}

impl TableMerge {
    fn new(l: usize, pair: (u32, u32), buckets: usize) -> Self {
        Self {
            l,
            pair,
            counts: vec![0u32; buckets],
            offsets: Vec::new(),
            entries: Vec::new(),
            cursor: Vec::new(),
            phase: MergePhase::CountPrev { next_bucket: 0 },
        }
    }

    /// Runs one bounded slice of work: at most `max_buckets` buckets of a
    /// bucket-addressed phase or `max_rows` generation rows of a
    /// row-addressed phase (the Offsets phase is a single indivisible
    /// slice). Returns `true` while the table still has work left.
    fn advance(&mut self, ctx: &MergeCtx<'_>, max_buckets: usize, max_rows: usize) -> bool {
        let max_buckets = max_buckets.max(1);
        let max_rows = max_rows.max(1);
        match self.phase {
            MergePhase::CountPrev { next_bucket } => match ctx.prev {
                None => self.phase = MergePhase::CountGens { gen: 0, row: 0 },
                Some(p) => {
                    let end = next_bucket.saturating_add(max_buckets).min(ctx.buckets);
                    if ctx.filters {
                        for key in next_bucket..end {
                            self.counts[key] = p
                                .bucket(self.l, key as u32)
                                .iter()
                                .filter(|&&id| !ctx.dropped(id))
                                .count() as u32;
                        }
                    } else {
                        for key in next_bucket..end {
                            self.counts[key] = p.bucket(self.l, key as u32).len() as u32;
                        }
                    }
                    self.phase = if end == ctx.buckets {
                        MergePhase::CountGens { gen: 0, row: 0 }
                    } else {
                        MergePhase::CountPrev { next_bucket: end }
                    };
                }
            },
            MergePhase::CountGens { mut gen, mut row } => {
                let (a, b) = self.pair;
                let mut budget = max_rows;
                while budget > 0 && gen < ctx.gens.len() {
                    let g = &ctx.gens[gen];
                    if row >= g.len() {
                        gen += 1;
                        row = 0;
                        continue;
                    }
                    let end = row.saturating_add(budget).min(g.len());
                    let sk = g.sketches();
                    for local in row..end {
                        let local = local as u32;
                        if ctx.filters && ctx.dropped(g.base() + local) {
                            continue;
                        }
                        let key = allpairs::compose_key(
                            sk.half_key(local, a),
                            sk.half_key(local, b),
                            ctx.half_bits,
                        );
                        self.counts[key as usize] += 1;
                    }
                    budget -= end - row;
                    row = end;
                }
                self.phase = if gen == ctx.gens.len() {
                    MergePhase::Offsets
                } else {
                    MergePhase::CountGens { gen, row }
                };
            }
            MergePhase::Offsets => {
                self.offsets = plsh_parallel::exclusive_prefix_sum(&self.counts);
                self.counts = Vec::new();
                let total = *self.offsets.last().expect("offsets has buckets+1 entries") as usize;
                self.entries = vec![0u32; total];
                self.cursor = self.offsets[..ctx.buckets].to_vec();
                self.phase = MergePhase::ScatterPrev { next_bucket: 0 };
            }
            MergePhase::ScatterPrev { next_bucket } => match ctx.prev {
                None => self.phase = MergePhase::ScatterGens { gen: 0, row: 0 },
                Some(p) => {
                    let end = next_bucket.saturating_add(max_buckets).min(ctx.buckets);
                    if ctx.filters {
                        for key in next_bucket..end {
                            for &id in p.bucket(self.l, key as u32) {
                                if !ctx.dropped(id) {
                                    self.entries[self.cursor[key] as usize] = id;
                                    self.cursor[key] += 1;
                                }
                            }
                        }
                    } else {
                        // No deletions: every bucket survives whole, so the
                        // previous epoch's run copies as one block.
                        for key in next_bucket..end {
                            let src = p.bucket(self.l, key as u32);
                            let at = self.cursor[key] as usize;
                            self.entries[at..at + src.len()].copy_from_slice(src);
                            self.cursor[key] += src.len() as u32;
                        }
                    }
                    self.phase = if end == ctx.buckets {
                        MergePhase::ScatterGens { gen: 0, row: 0 }
                    } else {
                        MergePhase::ScatterPrev { next_bucket: end }
                    };
                }
            },
            MergePhase::ScatterGens { mut gen, mut row } => {
                let (a, b) = self.pair;
                let mut budget = max_rows;
                while budget > 0 && gen < ctx.gens.len() {
                    let g = &ctx.gens[gen];
                    if row >= g.len() {
                        gen += 1;
                        row = 0;
                        continue;
                    }
                    let end = row.saturating_add(budget).min(g.len());
                    let sk = g.sketches();
                    for local in row..end {
                        let local = local as u32;
                        let id = g.base() + local;
                        if ctx.filters && ctx.dropped(id) {
                            continue;
                        }
                        let key = allpairs::compose_key(
                            sk.half_key(local, a),
                            sk.half_key(local, b),
                            ctx.half_bits,
                        );
                        self.entries[self.cursor[key as usize] as usize] = id;
                        self.cursor[key as usize] += 1;
                    }
                    budget -= end - row;
                    row = end;
                }
                if gen == ctx.gens.len() {
                    debug_assert!(self
                        .cursor
                        .iter()
                        .zip(&self.offsets[1..])
                        .all(|(c, o)| c == o));
                    self.cursor = Vec::new();
                    self.phase = MergePhase::Done;
                } else {
                    self.phase = MergePhase::ScatterGens { gen, row };
                }
            }
            MergePhase::Done => {}
        }
        !matches!(self.phase, MergePhase::Done)
    }

    fn into_table(self) -> StaticTable {
        debug_assert!(matches!(self.phase, MergePhase::Done));
        StaticTable {
            pair: self.pair,
            offsets: self.offsets,
            entries: self.entries,
        }
    }
}

/// A whole-epoch merge broken into resumable, bounded steps — the
/// cooperative counterpart of [`StaticTables::merge_generations`].
///
/// The stepper holds the per-table `MergePhase` state machines and
/// drives them one bounded slice per [`step`](Self::step) call, so the
/// caller (the engine's paced merge) can check a query-pressure signal
/// and yield the CPU between slices. Both drivers execute the identical
/// `advance` code, so a stepped merge produces tables bit-identical to
/// the monolithic call — a property the merge-equivalence proptest pins
/// down.
pub struct MergeStepper<'a> {
    ctx: MergeCtx<'a>,
    m: u32,
    n: usize,
    tables: Vec<TableMerge>,
    current: usize,
}

impl<'a> MergeStepper<'a> {
    /// Prepares a stepped merge with the same inputs (and the same
    /// snapshot semantics) as [`StaticTables::merge_generations`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        prev: Option<&'a StaticTables>,
        m: u32,
        half_bits: u32,
        n: usize,
        gens: &'a [Arc<DeltaGeneration>],
        purge: &'a [u64],
        purge_base: u32,
        retire_below: u32,
    ) -> Self {
        if let Some(p) = prev {
            debug_assert_eq!((p.m, p.half_bits), (m, half_bits));
        }
        let ctx = MergeCtx::new(prev, gens, purge, half_bits, purge_base, retire_below);
        let tables = allpairs::pairs(m)
            .enumerate()
            .map(|(l, pair)| TableMerge::new(l, pair, ctx.buckets))
            .collect();
        Self {
            ctx,
            m,
            n,
            tables,
            current: 0,
        }
    }

    /// Runs one bounded slice of work (at most `max_buckets` buckets or
    /// `max_rows` generation rows, see `TableMerge::advance`) and
    /// returns `true` while the merge as a whole still has work left.
    pub fn step(&mut self, max_buckets: usize, max_rows: usize) -> bool {
        if self.current >= self.tables.len() {
            return false;
        }
        if !self.tables[self.current].advance(&self.ctx, max_buckets, max_rows) {
            self.current += 1;
        }
        self.current < self.tables.len()
    }

    /// Whether every table has fully merged.
    pub fn is_done(&self) -> bool {
        self.current >= self.tables.len()
    }

    /// Consumes the stepper into the merged tables.
    ///
    /// # Panics
    /// Panics unless [`is_done`](Self::is_done) — callers must drain
    /// [`step`](Self::step) first.
    pub fn finish(self) -> StaticTables {
        assert!(self.is_done(), "MergeStepper finished with work remaining");
        StaticTables {
            m: self.m,
            half_bits: self.ctx.half_bits,
            n: self.n as u32,
            tables: self
                .tables
                .into_iter()
                .map(TableMerge::into_table)
                .collect(),
        }
    }
}

/// Baseline: one flat `2^k`-bucket partition per table.
fn build_one_level(
    sketches: &SketchMatrix,
    n: usize,
    pool: &ThreadPool,
) -> (Vec<StaticTable>, BuildTimings) {
    let m = sketches.m();
    let half_bits = sketches.half_bits();
    let buckets = 1usize << (2 * half_bits);
    let start = Instant::now();
    let tables = allpairs::pairs(m)
        .map(|(a, b)| {
            let part = build::partition_identity(
                n,
                buckets,
                |pos| {
                    allpairs::compose_key(
                        sketches.half_key(pos as u32, a),
                        sketches.half_key(pos as u32, b),
                        half_bits,
                    )
                },
                pool,
            );
            StaticTable {
                pair: (a, b),
                offsets: part.offsets,
                entries: part.perm,
            }
        })
        .collect();
    let timings = BuildTimings {
        step_i1: start.elapsed(),
        ..BuildTimings::default()
    };
    (tables, timings)
}

/// Two-level construction, optionally sharing first-level partitions.
fn build_two_level(
    sketches: &SketchMatrix,
    n: usize,
    shared: bool,
    pool: &ThreadPool,
) -> (Vec<StaticTable>, BuildTimings) {
    let m = sketches.m();
    let half_bits = sketches.half_bits();
    let b1 = 1usize << half_bits;
    let mut timings = BuildTimings::default();

    // Step I1 (shared): partition 0..n once per first-level function.
    // Unshared variant recomputes this inside the per-table loop below.
    let first_level: Vec<Option<Partition>> = if shared {
        let start = Instant::now();
        let parts = (0..m)
            .map(|a| {
                if a + 1 == m {
                    return None; // function m-1 is never a first level
                }
                Some(build::partition_identity(
                    n,
                    b1,
                    |pos| sketches.half_key(pos as u32, a),
                    pool,
                ))
            })
            .collect();
        timings.step_i1 = start.elapsed();
        parts
    } else {
        Vec::new()
    };

    let tables = allpairs::pairs(m)
        .map(|(a, b)| {
            let fresh;
            let part: &Partition = if shared {
                first_level[a as usize]
                    .as_ref()
                    .expect("a < m-1 by pair order")
            } else {
                let start = Instant::now();
                fresh =
                    build::partition_identity(n, b1, |pos| sketches.half_key(pos as u32, a), pool);
                timings.step_i1 += start.elapsed();
                &fresh
            };
            let (table, i2, i3) = second_level(sketches, part, b, half_bits, pool, (a, b));
            timings.step_i2 += i2;
            timings.step_i3 += i3;
            table
        })
        .collect();
    (tables, timings)
}

/// Steps I2 + I3 for one table: gather the second-level keys in first-level
/// order, then counting-sort every first-level bucket independently (with
/// work stealing across buckets).
fn second_level(
    sketches: &SketchMatrix,
    first: &Partition,
    b: u32,
    half_bits: u32,
    pool: &ThreadPool,
    pair: (u32, u32),
) -> (StaticTable, Duration, Duration) {
    let n = first.perm.len();
    let b1 = 1usize << half_bits;
    let b2 = b1;

    // Step I2: keys[pos] = u_b(point at first-level position pos).
    let i2_start = Instant::now();
    let mut keys = vec![0u32; n];
    {
        let shared_keys = SharedSliceMut::new(&mut keys);
        let shared_keys = &shared_keys;
        let perm = &first.perm;
        pool.parallel_for(0, n, 4096, |range| {
            for pos in range {
                // SAFETY: each position written by exactly one chunk.
                unsafe { shared_keys.write(pos, sketches.half_key(perm[pos], b)) };
            }
        });
    }

    let i2 = i2_start.elapsed();

    // Step I3: per first-level bucket, counting-sort by the second key and
    // record second-level counts for the final offsets array.
    let i3_start = Instant::now();
    let mut entries = vec![0u32; n];
    let mut counts = vec![0u32; b1 * b2];
    {
        let shared_entries = SharedSliceMut::new(&mut entries);
        let shared_counts = SharedSliceMut::new(&mut counts);
        let shared_entries = &shared_entries;
        let shared_counts = &shared_counts;
        let perm = &first.perm;
        let offsets = &first.offsets;
        let keys = &keys;
        pool.parallel_tasks(0..b1, |ha| {
            let lo = offsets[ha] as usize;
            let hi = offsets[ha + 1] as usize;
            let mut local_counts = vec![0u32; b2];
            let mut dst = vec![0u32; hi - lo];
            build::counting_sort_into(
                &perm[lo..hi],
                &keys[lo..hi],
                b2,
                &mut dst,
                &mut local_counts,
            );
            for (i, &item) in dst.iter().enumerate() {
                // SAFETY: bucket ranges are disjoint across tasks.
                unsafe { shared_entries.write(lo + i, item) };
            }
            for (hb, &c) in local_counts.iter().enumerate() {
                // SAFETY: counts stripe [ha*b2, (ha+1)*b2) owned by this task.
                unsafe { shared_counts.write(ha * b2 + hb, c) };
            }
        });
    }

    let offsets = plsh_parallel::exclusive_prefix_sum(&counts);
    debug_assert_eq!(*offsets.last().unwrap() as usize, n);
    let i3 = i3_start.elapsed();
    (
        StaticTable {
            pair,
            offsets,
            entries,
        },
        i2,
        i3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Hyperplanes;
    use crate::rng::SplitMix64;
    use crate::sparse::{CrsMatrix, SparseVector};

    /// Random sparse corpus for construction tests.
    fn corpus(n: usize, dim: u32, seed: u64) -> CrsMatrix {
        let mut rng = SplitMix64::new(seed);
        let mut m = CrsMatrix::new(dim);
        for _ in 0..n {
            let nnz = 2 + (rng.next_below(6) as usize);
            let mut pairs = Vec::new();
            for _ in 0..nnz {
                pairs.push((
                    rng.next_below(dim as u64) as u32,
                    rng.next_f64() as f32 + 0.1,
                ));
            }
            m.push(&SparseVector::unit(pairs).unwrap()).unwrap();
        }
        m
    }

    fn sketches(c: &CrsMatrix, m: u32, half_bits: u32, pool: &ThreadPool) -> SketchMatrix {
        let planes = Hyperplanes::new_dense(c.dim(), m * half_bits, 13, pool);
        let mut sk = SketchMatrix::new(m, half_bits);
        sk.append_from(c, &planes, 0, pool, true);
        sk
    }

    fn assert_tables_valid(t: &StaticTables, sk: &SketchMatrix) {
        let n = t.num_points();
        let buckets = 1u32 << (2 * t.half_bits());
        for l in 0..t.num_tables() {
            let (a, b) = t.pair(l);
            let mut seen = vec![false; n];
            for key in 0..buckets {
                for &id in t.bucket(l, key) {
                    // Every entry is in the bucket its sketch dictates.
                    let expect = allpairs::compose_key(
                        sk.half_key(id, a),
                        sk.half_key(id, b),
                        t.half_bits(),
                    );
                    assert_eq!(key, expect, "table {l} point {id}");
                    assert!(!seen[id as usize], "duplicate point {id} in table {l}");
                    seen[id as usize] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "table {l} must contain every point"
            );
        }
    }

    #[test]
    fn all_strategies_produce_identical_tables() {
        let pool = ThreadPool::new(2);
        let c = corpus(500, 64, 3);
        let sk = sketches(&c, 5, 3, &pool);
        let one = StaticTables::build(&sk, BuildStrategy::OneLevel, &pool);
        let two = StaticTables::build(&sk, BuildStrategy::TwoLevel, &pool);
        let shared = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool);

        assert_tables_valid(&one, &sk);
        assert_tables_valid(&two, &sk);
        assert_tables_valid(&shared, &sk);

        let buckets = 1u32 << (2 * sk.half_bits());
        for l in 0..one.num_tables() {
            for key in 0..buckets {
                // Bucket membership must agree across strategies. Order
                // within a bucket is also identical because every pass is
                // stable on point id.
                assert_eq!(one.bucket(l, key), two.bucket(l, key), "l={l} key={key}");
                assert_eq!(one.bucket(l, key), shared.bucket(l, key), "l={l} key={key}");
            }
        }
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let c = corpus(5000, 128, 17);
        let pool1 = ThreadPool::new(1);
        let pool4 = ThreadPool::new(4);
        let sk = sketches(&c, 4, 4, &pool1);
        let serial = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool1);
        let parallel = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool4);
        let buckets = 1u32 << 8;
        for l in 0..serial.num_tables() {
            for key in 0..buckets {
                assert_eq!(serial.bucket(l, key), parallel.bucket(l, key));
            }
        }
    }

    #[test]
    fn build_prefix_excludes_tail_points() {
        let pool = ThreadPool::new(1);
        let c = corpus(100, 32, 5);
        let sk = sketches(&c, 3, 2, &pool);
        let t = StaticTables::build_prefix(&sk, 60, BuildStrategy::TwoLevelShared, &pool);
        assert_eq!(t.num_points(), 60);
        let buckets = 1u32 << 4;
        for l in 0..t.num_tables() {
            let mut count = 0;
            for key in 0..buckets {
                for &id in t.bucket(l, key) {
                    assert!(id < 60);
                    count += 1;
                }
            }
            assert_eq!(count, 60);
        }
    }

    #[test]
    fn empty_build_is_fine() {
        let pool = ThreadPool::new(2);
        let sk = SketchMatrix::new(3, 2);
        let t = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool);
        assert_eq!(t.num_points(), 0);
        assert_eq!(t.num_tables(), 3);
        for l in 0..3 {
            for key in 0..16 {
                assert!(t.bucket(l, key).is_empty());
            }
        }
    }

    #[test]
    fn merge_generations_matches_rebuild() {
        use crate::table::DeltaLayout;
        let pool = ThreadPool::new(2);
        let c = corpus(300, 64, 21);
        let (m, half_bits) = (4u32, 3u32);
        let planes = Hyperplanes::new_dense(64, m * half_bits, 13, &pool);
        let mut sk_all = SketchMatrix::new(m, half_bits);
        sk_all.append_from(&c, &planes, 0, &pool, true);

        // Static prefix of 200 points; two sealed generations over the rest.
        let prev = StaticTables::build_prefix(&sk_all, 200, BuildStrategy::TwoLevelShared, &pool);
        let mk_gen = |base: usize, end: usize| {
            let mut g = DeltaGeneration::new(
                base as u32,
                64,
                m,
                half_bits,
                DeltaLayout::Adaptive,
                end - base,
            );
            let vs: Vec<_> = (base..end).map(|i| c.row_vector(i as u32)).collect();
            g.append(&vs, &planes, true, &pool).unwrap();
            Arc::new(g)
        };
        let gens = vec![mk_gen(200, 260), mk_gen(260, 300)];
        let rebuilt = StaticTables::build(&sk_all, BuildStrategy::TwoLevelShared, &pool);
        let buckets = 1u32 << (2 * half_bits);

        // No purges: the merge must reproduce the rebuild bucket for bucket.
        let no_purge = vec![0u64; 300usize.div_ceil(64)];
        let merged = StaticTables::merge_generations(
            Some(&prev),
            m,
            half_bits,
            300,
            &gens,
            &no_purge,
            0,
            0,
            &pool,
        );
        assert_eq!(merged.num_points(), 300);
        for l in 0..rebuilt.num_tables() {
            for key in 0..buckets {
                assert_eq!(
                    merged.bucket(l, key),
                    rebuilt.bucket(l, key),
                    "l={l} key={key}"
                );
            }
        }

        // With purges: identical minus exactly the dropped ids.
        let victims = [5u32, 210, 299];
        let mut purge = no_purge;
        for id in victims {
            purge[(id >> 6) as usize] |= 1 << (id & 63);
        }
        let purged = StaticTables::merge_generations(
            Some(&prev),
            m,
            half_bits,
            300,
            &gens,
            &purge,
            0,
            0,
            &pool,
        );
        for l in 0..rebuilt.num_tables() {
            for key in 0..buckets {
                let expect: Vec<u32> = rebuilt
                    .bucket(l, key)
                    .iter()
                    .copied()
                    .filter(|id| !victims.contains(id))
                    .collect();
                assert_eq!(purged.bucket(l, key), &expect[..], "l={l} key={key}");
            }
        }

        // First merge (no previous epoch): generations only.
        let first =
            StaticTables::merge_generations(None, m, half_bits, 300, &gens, &purge, 0, 0, &pool);
        for l in 0..first.num_tables() {
            for key in 0..buckets {
                let expect: Vec<u32> = rebuilt
                    .bucket(l, key)
                    .iter()
                    .copied()
                    .filter(|id| *id >= 200 && !victims.contains(id))
                    .collect();
                assert_eq!(first.bucket(l, key), &expect[..], "l={l} key={key}");
            }
        }
    }

    #[test]
    fn memory_accounting_matches_layout() {
        let pool = ThreadPool::new(1);
        let c = corpus(200, 32, 9);
        let sk = sketches(&c, 4, 3, &pool);
        let t = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool);
        let l = t.num_tables();
        let expect = l * (200 + (1 << 6) + 1) * 4;
        assert_eq!(t.memory_bytes(), expect);
    }
}
