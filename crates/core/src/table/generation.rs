//! Append-only delta generations for the concurrent ingest path.
//!
//! The streaming write path buffers inserts in *generations*: each
//! generation owns its own slice of the corpus (a local [`CrsMatrix`]),
//! the sketches of those rows, and insert-optimized [`DeltaTables`] over
//! **local** row ids. While open, a generation accepts `append` calls from
//! the (single, serialized) writer; *sealing* wraps it in an `Arc` and
//! publishes it in the engine's epoch — a pointer move, no copying — after
//! which it is immutable and safely shared with concurrent readers.
//!
//! Queries see `global id = generation base + local id`; a background
//! merge later folds whole sealed generations into the next static epoch
//! and drops them.

use plsh_parallel::ThreadPool;

use crate::error::Result;
use crate::hash::{Hyperplanes, SketchMatrix};
use crate::sparse::{CrsMatrix, SparseVector};
use crate::table::{DeltaLayout, DeltaTables};

/// One delta generation: a contiguous run of inserted points with their
/// data, sketches, and bucket bins, addressed by local ids `0..len`.
#[derive(Debug)]
pub struct DeltaGeneration {
    /// Global id of local point 0.
    base: u32,
    data: CrsMatrix,
    sketches: SketchMatrix,
    tables: DeltaTables,
}

impl DeltaGeneration {
    /// Creates an empty generation whose points start at global id `base`.
    ///
    /// `expected_points` resolves an adaptive bin layout (see
    /// [`DeltaLayout::Adaptive`]); pass the size of the first batch.
    pub fn new(
        base: u32,
        dim: u32,
        m: u32,
        half_bits: u32,
        layout: DeltaLayout,
        expected_points: usize,
    ) -> Self {
        Self {
            base,
            data: CrsMatrix::new(dim),
            sketches: SketchMatrix::new(m, half_bits),
            tables: DeltaTables::with_expected(m, half_bits, layout, expected_points),
        }
    }

    /// Global id of the generation's first point.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of points in the generation.
    pub fn len(&self) -> usize {
        self.data.num_rows()
    }

    /// True when the generation holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-past-the-end global id.
    pub fn end(&self) -> u32 {
        self.base + self.len() as u32
    }

    /// The generation's rows (local ids).
    pub fn data(&self) -> &CrsMatrix {
        &self.data
    }

    /// The generation's sketches (local rows), reused by the merge so
    /// points are hashed exactly once.
    pub fn sketches(&self) -> &SketchMatrix {
        &self.sketches
    }

    /// The **local** ids buffered in bucket `key` of table `l`; add
    /// [`base`](Self::base) to obtain global ids.
    #[inline]
    pub fn bucket(&self, l: usize, key: u32) -> &[u32] {
        self.tables.bucket(l, key)
    }

    /// Appends a batch: stores the rows, hashes them once, and files the
    /// new local ids into the delta bins. Dimensions must have been
    /// validated by the caller (the engine checks the whole batch before
    /// touching any state).
    pub fn append(
        &mut self,
        vs: &[SparseVector],
        planes: &Hyperplanes,
        vectorized: bool,
        pool: &ThreadPool,
    ) -> Result<()> {
        let from = self.data.num_rows();
        for v in vs {
            self.data.push(v)?;
        }
        self.sketches
            .append_from(&self.data, planes, from, pool, vectorized);
        let ids: Vec<u32> = (from as u32..self.data.num_rows() as u32).collect();
        self.tables.insert_batch(&self.sketches, &ids, pool);
        Ok(())
    }

    /// Approximate bytes held (rows + sketches + bins).
    pub fn memory_bytes(&self) -> usize {
        self.data.total_nnz() * 8 + self.sketches.memory_bytes() + self.tables.memory_bytes()
    }

    /// Bytes held by the delta bins alone.
    pub fn delta_bytes(&self) -> usize {
        self.tables.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::allpairs;
    use crate::rng::SplitMix64;

    fn random_vec(rng: &mut SplitMix64, dim: u32) -> SparseVector {
        let a = rng.next_below(dim as u64) as u32;
        let b = (a + 1 + rng.next_below(dim as u64 - 1) as u32) % dim;
        SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
    }

    #[test]
    fn append_files_points_under_local_ids() {
        let pool = ThreadPool::new(2);
        let (dim, m, half_bits) = (64u32, 4u32, 3u32);
        let planes = Hyperplanes::new_dense(dim, m * half_bits, 9, &pool);
        let mut rng = SplitMix64::new(3);
        let vs: Vec<SparseVector> = (0..30).map(|_| random_vec(&mut rng, dim)).collect();

        let mut g = DeltaGeneration::new(100, dim, m, half_bits, DeltaLayout::Adaptive, 30);
        g.append(&vs[..10], &planes, true, &pool).unwrap();
        g.append(&vs[10..], &planes, true, &pool).unwrap();
        assert_eq!(g.base(), 100);
        assert_eq!(g.len(), 30);
        assert_eq!(g.end(), 130);

        // Every point sits in exactly the bucket its sketch dictates, once
        // per table, under its local id.
        for (l, (a, b)) in allpairs::pairs(m).enumerate() {
            let mut found = 0;
            for key in 0..(1u32 << (2 * half_bits)) {
                for &local in g.bucket(l, key) {
                    let expect = allpairs::compose_key(
                        g.sketches().half_key(local, a),
                        g.sketches().half_key(local, b),
                        half_bits,
                    );
                    assert_eq!(key, expect);
                    found += 1;
                }
            }
            assert_eq!(found, 30, "table {l}");
        }
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn rows_round_trip() {
        let pool = ThreadPool::new(1);
        let planes = Hyperplanes::new_dense(16, 2 * 2, 1, &pool);
        let v = SparseVector::unit(vec![(1, 1.0), (5, 2.0)]).unwrap();
        let mut g = DeltaGeneration::new(0, 16, 2, 2, DeltaLayout::Adaptive, 1);
        g.append(std::slice::from_ref(&v), &planes, true, &pool)
            .unwrap();
        assert_eq!(g.data().row_vector(0), v);
    }
}
