//! Internal utilities: disjoint-write shared slices, huge-page hints, and
//! the software-prefetch primitive.

use std::cell::UnsafeCell;

/// Hints the hardware to pull the cache line holding `ptr` into L1.
///
/// A no-op on architectures without an exposed prefetch intrinsic. Safe to
/// call with any address derived from a live borrow — prefetch never
/// faults and never changes observable behavior, only timing.
#[inline(always)]
pub(crate) fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault or write.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(ptr as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// A slice that multiple worker threads scatter into at provably disjoint
/// positions (the global offsets computed by the partition prefix sums).
///
/// The partitioning algorithm of Kim et al. \[21\] assigns every element a
/// unique destination slot before the scatter pass, so concurrent writes
/// never alias; this wrapper just lets us express that to the compiler.
pub(crate) struct SharedSliceMut<'a, T> {
    data: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send> Send for SharedSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedSliceMut<'_, T> {}

impl<'a, T> SharedSliceMut<'a, T> {
    /// Wraps a mutable slice for disjoint concurrent writes.
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` guarantees exclusive access; `UnsafeCell<T>`
        // has the same layout as `T`.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Number of slots.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.data.len()
    }

    /// Writes `value` into slot `idx`.
    ///
    /// # Safety
    /// Each slot must be written by at most one thread during the lifetime
    /// of this wrapper, and no reads may occur until all writers finish.
    #[inline]
    pub(crate) unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.data.len());
        *self.data[idx].get() = value;
    }
}

/// Copy-out read used by tests to verify scatter results mid-flight.
impl<T: Copy> SharedSliceMut<'_, T> {
    /// Reads slot `idx`.
    ///
    /// # Safety
    /// No concurrent writer may target `idx`.
    #[allow(dead_code)]
    pub(crate) unsafe fn read(&self, idx: usize) -> T {
        *self.data[idx].get()
    }
}

/// Advises the kernel to back `data` with transparent huge pages.
///
/// This reproduces the paper's "large 2 MB pages" optimization
/// (Section 5.2.2): the corpus data table is the main victim of TLB misses
/// during step Q3, and huge pages cut those misses. On non-Linux targets,
/// or when the region is too small, this is a no-op. Returns whether the
/// hint was issued.
pub fn advise_huge_pages<T>(data: &[T]) -> bool {
    #[cfg(target_os = "linux")]
    {
        // Declared inline so the crate needs no `libc` dependency.
        const MADV_HUGEPAGE: i32 = 14;
        extern "C" {
            fn madvise(addr: *mut std::ffi::c_void, length: usize, advice: i32) -> i32;
        }
        const HUGE: usize = 2 << 20;
        let bytes = std::mem::size_of_val(data);
        if bytes < HUGE {
            return false;
        }
        let addr = data.as_ptr() as usize;
        // madvise wants page alignment; advise the huge-page-aligned
        // sub-range of the allocation.
        let aligned = (addr + HUGE - 1) & !(HUGE - 1);
        let end = (addr + bytes) & !(HUGE - 1);
        if end <= aligned {
            return false;
        }
        // SAFETY: the range lies inside a live allocation we borrow;
        // MADV_HUGEPAGE is advisory and never alters contents.
        let rc = unsafe {
            madvise(
                aligned as *mut std::ffi::c_void,
                end - aligned,
                MADV_HUGEPAGE,
            )
        };
        rc == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = data;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_slice_disjoint_writes() {
        let mut v = vec![0u32; 64];
        {
            let shared = SharedSliceMut::new(&mut v);
            // Two "threads" writing disjoint halves (sequential here; the
            // aliasing rules are what is under test).
            for i in 0..32 {
                unsafe { shared.write(i, i as u32) };
            }
            for i in 32..64 {
                unsafe { shared.write(i, (i * 2) as u32) };
            }
        }
        for (i, &x) in v.iter().enumerate() {
            let expect = if i < 32 { i as u32 } else { (i * 2) as u32 };
            assert_eq!(x, expect);
        }
    }

    #[test]
    fn shared_slice_parallel_scatter() {
        use plsh_parallel::ThreadPool;
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let mut v = vec![0u64; n];
        {
            let shared = SharedSliceMut::new(&mut v);
            let shared = &shared;
            pool.parallel_for(0, n, 128, |range| {
                for i in range {
                    // Unique destination per index: reverse permutation.
                    unsafe { shared.write(n - 1 - i, i as u64) };
                }
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (n - 1 - i) as u64);
        }
    }

    #[test]
    fn huge_page_hint_small_region_is_noop() {
        let v = vec![0u8; 4096];
        assert!(!advise_huge_pages(&v));
    }

    #[test]
    fn huge_page_hint_large_region() {
        let v = vec![0u8; 8 << 20];
        // Must not crash; result depends on kernel configuration.
        let _ = advise_huge_pages(&v);
        assert!(v.iter().all(|&b| b == 0), "madvise must not alter contents");
    }
}
