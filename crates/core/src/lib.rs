//! # plsh-core — Parallel Locality-Sensitive Hashing
//!
//! The core algorithm of *"Streaming Similarity Search over one Billion
//! Tweets using Parallel Locality-Sensitive Hashing"* (Sundaram et al.,
//! VLDB 2013): an in-memory LSH index for angular distance over sparse
//! high-dimensional unit vectors, engineered for multi-core construction
//! and high-throughput querying, with streaming inserts via delta tables.
//!
//! ## Layout of the crate
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`sparse`] | 5.1.1, 5.2.3 | sparse vectors, CRS matrices, angular distance kernels |
//! | [`hash`] | 3, 5.1.1 | random-hyperplane family, all-pairs sketches |
//! | [`table`] | 5.1.2, 6.1 | static two-level partitioned tables, streaming delta tables |
//! | [`simd`] | 5.1.1, 5.2.3 | runtime-dispatched SIMD kernels for hashing and dot products |
//! | [`dedup`] | 5.2.1 | bitvector duplicate elimination |
//! | [`query`] | 5.2 | the Q1–Q4 query pipeline with ablation switches |
//! | [`engine`] | 4, 6 | single-node engine: epoch-swapped static tables + sealed delta generations + deletions + merge |
//! | [`streaming`] | 4, 6 | shared-read streaming handle: concurrent ingest ‖ query ‖ background merge |
//! | [`persist`] | — | durable WAL + segment-per-generation persistence and startup recovery |
//! | [`params`] | 3, 7.2–7.3 | collision math and parameter selection |
//! | [`model`] | 7.1 | the analytic performance model |
//!
//! ## A minimal end-to-end run
//!
//! ```
//! use plsh_core::{Engine, EngineConfig, PlshParams, SparseVector};
//! use plsh_parallel::ThreadPool;
//!
//! let params = PlshParams::builder(16).k(4).m(4).radius(0.9).seed(42).build().unwrap();
//! let pool = ThreadPool::new(1);
//! let engine = Engine::new(EngineConfig::new(params, 64), &pool).unwrap();
//!
//! let a = SparseVector::unit(vec![(0, 1.0), (3, 2.0)]).unwrap();
//! let b = SparseVector::unit(vec![(0, 1.0), (3, 1.9)]).unwrap(); // near-duplicate of `a`
//! let c = SparseVector::unit(vec![(9, 1.0), (14, 1.0)]).unwrap(); // unrelated
//! engine.insert(a.clone(), &pool).unwrap();
//! engine.insert(b, &pool).unwrap();
//! engine.insert(c, &pool).unwrap();
//!
//! let hits = engine.query(&a);
//! assert!(hits.iter().any(|h| h.index == 1));
//! ```

pub mod dedup;
pub mod engine;
pub mod error;
pub mod fault;
pub mod hash;
pub mod health;
pub mod model;
pub mod params;
pub mod persist;
pub mod query;
pub mod rng;
pub mod search;
pub mod simd;
pub mod snapshot;
pub mod sparse;
pub mod stats;
pub mod streaming;
pub mod table;
pub(crate) mod util;

pub use engine::{
    Engine, EngineConfig, EngineStats, EpochInfo, MergePacing, MergeReport, WindowSpec,
};
pub use error::{PlshError, Result};
pub use hash::{Hyperplanes, HyperplanesKind, SketchMatrix};
pub use health::{HealthReport, WorkerHealth};
pub use params::{ParamCandidate, ParamSelection, PlshParams, PlshParamsBuilder};
pub use persist::RecoveredState;
pub use query::{BatchStats, Neighbor, QueryPhaseTimings, QueryStats, QueryStrategy};
pub use search::{SearchBackend, SearchHit, SearchMode, SearchRequest, SearchResponse};
pub use snapshot::Snapshot;
pub use sparse::{CrsMatrix, SparseVector};
pub use streaming::{ShutdownReport, StreamingEngine};
pub use table::{
    BuildStrategy, BuildTimings, DeltaGeneration, DeltaLayout, DeltaTables, MergeStepper,
    StaticTables,
};
