//! The unified request/response search API — one door for every backend.
//!
//! The paper's system is a *service*: a front-end answers streaming
//! similarity queries whether they land on a fresh delta generation, a
//! merged static table, or a remote node. This module is that front-end's
//! contract. A [`SearchRequest`] describes *what* to answer — one or many
//! query vectors, radius or k-NN mode, per-request radius override,
//! pipeline strategy, candidate budget, stats/profiling switches — and a
//! [`SearchResponse`] carries the per-query hits plus whatever
//! observability the request asked for. Every backend
//! ([`Engine`](crate::engine::Engine),
//! [`StreamingEngine`](crate::streaming::StreamingEngine), and the
//! multi-node `Cluster` in `plsh-cluster`) implements [`SearchBackend`]
//! and answers the *exact same* request type, so a new scenario is a new
//! request field — not a new method on three front-ends.
//!
//! ```
//! use plsh_core::search::{SearchBackend, SearchRequest};
//! use plsh_core::{Engine, EngineConfig, PlshParams, SparseVector};
//! use plsh_parallel::ThreadPool;
//!
//! let params = PlshParams::builder(16).k(4).m(4).radius(0.9).seed(42).build().unwrap();
//! let pool = ThreadPool::new(1);
//! let engine = Engine::new(EngineConfig::new(params, 64), &pool).unwrap();
//! let a = SparseVector::unit(vec![(0, 1.0), (3, 2.0)]).unwrap();
//! let b = SparseVector::unit(vec![(0, 1.0), (3, 1.9)]).unwrap();
//! engine.insert(a.clone(), &pool).unwrap();
//! engine.insert(b, &pool).unwrap();
//!
//! // Radius search with stats, through the typed entry point.
//! let resp = engine.search(&SearchRequest::query(a).with_stats(), &pool).unwrap();
//! assert!(resp.hits().iter().any(|h| h.index == 1));
//! assert!(resp.stats.unwrap().totals.matches >= 2);
//! ```

use crate::engine::EpochInfo;
use crate::error::{PlshError, Result};
use crate::query::{BatchStats, Neighbor, QueryPhaseTimings, QueryStrategy};
use crate::sparse::SparseVector;
use plsh_parallel::ThreadPool;

/// What kind of answer the request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Every point within the radius (the engine's configured `R`, unless
    /// the request overrides it) — the paper's query semantics.
    Radius,
    /// The `k` closest points among everything the hash tables surface,
    /// ascending by distance. Approximate, like every LSH k-NN: only
    /// candidates sharing at least two half-keys with the query are
    /// ranked.
    Knn(usize),
}

/// A typed, extensible search request: one or many query vectors plus
/// every knob the pipeline exposes. Construct with
/// [`query`](SearchRequest::query) or [`batch`](SearchRequest::batch) and
/// chain builder methods; unset fields fall back to the backend's
/// configuration.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    queries: Vec<SparseVector>,
    mode: SearchMode,
    radius: Option<f32>,
    strategy: Option<QueryStrategy>,
    collect_stats: bool,
    profile: bool,
    max_candidates: Option<usize>,
    per_query_pipeline: bool,
    shard_deadline: Option<std::time::Duration>,
}

impl SearchRequest {
    /// A radius search for a single query vector.
    pub fn query(q: SparseVector) -> Self {
        Self::batch(vec![q])
    }

    /// A radius search for a batch of query vectors (answered through the
    /// batched SIMD pipeline by default).
    pub fn batch(queries: Vec<SparseVector>) -> Self {
        Self {
            queries,
            mode: SearchMode::Radius,
            radius: None,
            strategy: None,
            collect_stats: false,
            profile: false,
            max_candidates: None,
            per_query_pipeline: false,
            shard_deadline: None,
        }
    }

    /// Switches to approximate k-nearest-neighbor mode: each query returns
    /// its `k` closest candidates ascending by distance. The backend's
    /// configured radius is ignored; combine with
    /// [`with_radius`](Self::with_radius) to cap how far a neighbor may
    /// be ("the k nearest within `R`").
    pub fn top_k(mut self, k: usize) -> Self {
        self.mode = SearchMode::Knn(k);
        self
    }

    /// Overrides the backend's configured radius `R` for this request
    /// only. Must lie in `(0, π]`. In k-NN mode (where the configured `R`
    /// plays no role) this caps the reported neighbors' distance instead.
    pub fn with_radius(mut self, radius: f32) -> Self {
        self.radius = Some(radius);
        self
    }

    /// Overrides the backend's query strategy (the Figure 5 ablation
    /// switches) for this request only.
    pub fn with_strategy(mut self, strategy: QueryStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Asks for aggregated pipeline counters and wall time in
    /// [`SearchResponse::stats`].
    pub fn with_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// Asks for per-phase (Q2/Q3) wall times in
    /// [`SearchResponse::phase_timings`]. Profiled requests run the batch
    /// *sequentially* so the phase timers stay meaningful (Figure 6);
    /// answers are unchanged.
    pub fn with_profiling(mut self) -> Self {
        self.profile = true;
        self.collect_stats = true;
        self
    }

    /// Caps the candidates whose exact distance is computed per query — a
    /// latency/deadline budget. Queries whose hash tables surface more
    /// candidates than this stop early, so answers beyond the budget may
    /// be missed (recall trades for a bounded worst case). The visited
    /// prefix is always the ascending-id candidate order, so a budgeted
    /// request returns the same answers on every backend and strategy
    /// level regardless of how the corpus is segmented.
    pub fn with_max_candidates(mut self, budget: usize) -> Self {
        self.max_candidates = Some(budget);
        self
    }

    /// Bounds how long a fan-out backend waits on each shard. Shards that
    /// miss the deadline are dropped from the answer and listed in
    /// [`SearchResponse::timed_out_shards`], so one stalled shard yields a
    /// partial, flagged response instead of a hung fan-out. Single-node
    /// backends ignore the field (there is nothing to detach from).
    pub fn with_shard_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.shard_deadline = Some(deadline);
        self
    }

    /// Routes a batch through the per-query pipeline (one independent
    /// Q1–Q4 task per query) instead of the batched SIMD pipeline —
    /// the paper's Figure 5 measurement protocol. Answers are identical;
    /// only speed differs.
    pub fn per_query_pipeline(mut self) -> Self {
        self.per_query_pipeline = true;
        self
    }

    /// The query vectors.
    pub fn queries(&self) -> &[SparseVector] {
        &self.queries
    }

    /// Radius or k-NN mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// The per-request radius override, if any.
    pub fn radius_override(&self) -> Option<f32> {
        self.radius
    }

    /// The per-request strategy override, if any.
    pub fn strategy_override(&self) -> Option<QueryStrategy> {
        self.strategy
    }

    /// Whether the response should carry [`BatchStats`].
    pub fn collects_stats(&self) -> bool {
        self.collect_stats
    }

    /// Whether the response should carry [`QueryPhaseTimings`].
    pub fn profiles(&self) -> bool {
        self.profile
    }

    /// The per-query candidate budget, if any.
    pub fn max_candidates(&self) -> Option<usize> {
        self.max_candidates
    }

    /// Whether the batch bypasses the batched SIMD pipeline.
    pub fn uses_per_query_pipeline(&self) -> bool {
        self.per_query_pipeline
    }

    /// The per-shard fan-out deadline, if any.
    pub fn shard_deadline(&self) -> Option<std::time::Duration> {
        self.shard_deadline
    }

    /// Validates the request against a backend of dimensionality `dim`:
    /// every query index must lie below `dim` and a radius override must
    /// lie in `(0, π]`. Backends call this before touching the tables, so
    /// a malformed request is an [`Err`], never a panic.
    pub fn validate(&self, dim: u32) -> Result<()> {
        for q in &self.queries {
            if let Some(max) = q.max_index() {
                if max >= dim {
                    return Err(PlshError::DimensionOutOfRange { index: max, dim });
                }
            }
        }
        if let Some(r) = self.radius {
            if !(r > 0.0 && r <= std::f32::consts::PI) {
                return Err(PlshError::InvalidParams(format!(
                    "radius override must lie in (0, pi], got {r}"
                )));
            }
        }
        if let Some(0) = self.max_candidates {
            return Err(PlshError::InvalidParams(
                "max_candidates budget must be > 0".into(),
            ));
        }
        Ok(())
    }
}

/// A reported neighbor, qualified by the node that holds it. Single-node
/// backends always report `node == 0`; the cluster coordinator fills in
/// the owning node so `(node, index)` is a stable global identity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SearchHit {
    /// Node that holds the point (0 on single-node backends).
    pub node: u32,
    /// Node-local point id.
    pub index: u32,
    /// Angular distance to the query.
    pub distance: f32,
}

impl From<Neighbor> for SearchHit {
    fn from(n: Neighbor) -> Self {
        Self {
            node: 0,
            index: n.index,
            distance: n.distance,
        }
    }
}

impl SearchHit {
    /// The same hit attributed to `node` (used by cluster coordinators).
    pub fn on_node(mut self, node: u32) -> Self {
        self.node = node;
        self
    }
}

/// The answer to a [`SearchRequest`]: per-query hits plus the
/// observability the request asked for.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// One hit list per query vector, in request order. Radius mode
    /// reports hits in pipeline discovery order; k-NN mode ascending by
    /// distance.
    pub results: Vec<Vec<SearchHit>>,
    /// Aggregated pipeline counters and wall time, when the request set
    /// [`with_stats`](SearchRequest::with_stats). The wall time covers the
    /// pipeline proper (hashing through distance filtering), excluding
    /// request validation and response assembly.
    pub stats: Option<BatchStats>,
    /// Per-phase wall times, when the request set
    /// [`with_profiling`](SearchRequest::with_profiling).
    pub phase_timings: Option<QueryPhaseTimings>,
    /// The pinned epoch the whole request ran against — `None` on
    /// multi-node backends, where each node pins its own. The invariant
    /// `visible = static + sealed` holds for every pin.
    pub epoch: Option<EpochInfo>,
    /// Shards that missed the request's
    /// [`shard_deadline`](SearchRequest::with_shard_deadline) and were
    /// dropped from the answer. Empty on single-node backends and whenever
    /// no deadline was set: an empty list means the answer is complete.
    pub timed_out_shards: Vec<u32>,
}

impl SearchResponse {
    /// The first query's hits — the natural accessor for single-query
    /// requests.
    pub fn hits(&self) -> &[SearchHit] {
        self.results.first().map_or(&[], Vec::as_slice)
    }

    /// Consumes the response into the first query's hits.
    pub fn into_hits(mut self) -> Vec<SearchHit> {
        if self.results.is_empty() {
            Vec::new()
        } else {
            self.results.swap_remove(0)
        }
    }

    /// Total hits across all queries.
    pub fn total_hits(&self) -> usize {
        self.results.iter().map(Vec::len).sum()
    }
}

/// The one query-side contract every PLSH front-end implements.
///
/// `pool` supplies the workers for whatever fan-out the backend performs
/// (batched hashing, per-query tasks, node broadcast); backends that own a
/// pool (e.g. `StreamingEngine`) also expose a pool-free inherent
/// `search(&req)` and pass their own pool here.
pub trait SearchBackend {
    /// Answers one request; every backend returns the same answer set for
    /// the same request over the same data (tested by the root
    /// `backend_equivalence` suite).
    fn search(&self, req: &SearchRequest, pool: &ThreadPool) -> Result<SearchResponse>;
}

/// Orders `hits` ascending by `(distance, index)` and keeps the closest
/// `k` — the k-NN post-pass shared by every backend, so single-node and
/// merged multi-node rankings tie-break identically.
pub fn rank_top_k(hits: &mut Vec<SearchHit>, k: usize) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.node.cmp(&b.node))
            .then(a.index.cmp(&b.index))
    });
    hits.truncate(k);
}

/// The k-way top-`k` merge for coordinators whose hits carry *global* ids:
/// orders ascending by `(distance, index)` — ignoring the node attribution,
/// which is bookkeeping rather than identity once ids are global — and
/// keeps the closest `k`. With globally unique ids this tie-breaks exactly
/// like [`rank_top_k`] does on a single node (where `node` is always 0), so
/// a sharded backend's k-NN ranking is bit-identical to one big engine's.
pub fn rank_top_k_global(hits: &mut Vec<SearchHit>, k: usize) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then(a.index.cmp(&b.index))
            .then(a.node.cmp(&b.node))
    });
    hits.truncate(k);
}

/// The coordinator-side merge shared by every multi-node backend
/// (`Cluster`'s broadcast and `ShardedIndex`'s fan-out): concatenates the
/// per-node partial responses per query (running each hit through
/// `translate(node, hit)` — node attribution for a broadcast, global-id
/// translation for a sharded backend), aggregates the optional
/// [`BatchStats`] counters and [`QueryPhaseTimings`], applies `rank` per
/// query in k-NN mode, and stamps the aggregated wall time from `start`.
///
/// Centralizing this is what keeps the backends' answers from drifting:
/// a new response field aggregates here once, for every coordinator.
/// [`SearchResponse::epoch`] is always `None` (each node pins its own).
pub fn merge_partial_responses(
    num_queries: usize,
    mode: SearchMode,
    start: std::time::Instant,
    partials: Vec<Result<SearchResponse>>,
    mut translate: impl FnMut(usize, SearchHit) -> SearchHit,
    rank: fn(&mut Vec<SearchHit>, usize),
) -> Result<SearchResponse> {
    let mut results: Vec<Vec<SearchHit>> = vec![Vec::new(); num_queries];
    let mut stats: Option<BatchStats> = None;
    let mut timings: Option<QueryPhaseTimings> = None;
    for (node, partial) in partials.into_iter().enumerate() {
        let resp = partial?;
        for (q, hits) in resp.results.into_iter().enumerate() {
            results[q].extend(hits.into_iter().map(|h| translate(node, h)));
        }
        if let Some(node_stats) = resp.stats {
            let agg = stats.get_or_insert(BatchStats {
                queries: num_queries as u64,
                ..BatchStats::default()
            });
            agg.totals.merge(&node_stats.totals);
        }
        if let Some(node_timings) = resp.phase_timings {
            let agg = timings.get_or_insert(QueryPhaseTimings::default());
            agg.step_q2 += node_timings.step_q2;
            agg.step_q3 += node_timings.step_q3;
        }
    }
    if let SearchMode::Knn(k) = mode {
        for hits in &mut results {
            rank(hits, k);
        }
    }
    if let Some(agg) = stats.as_mut() {
        agg.elapsed = start.elapsed();
    }
    Ok(SearchResponse {
        results,
        stats,
        phase_timings: timings,
        epoch: None,
        timed_out_shards: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: Vec<(u32, f32)>) -> SparseVector {
        SparseVector::unit(pairs).unwrap()
    }

    #[test]
    fn builder_accumulates_fields() {
        let req = SearchRequest::batch(vec![v(vec![(0, 1.0)]), v(vec![(1, 1.0)])])
            .top_k(5)
            .with_radius(1.2)
            .with_strategy(QueryStrategy::unoptimized())
            .with_stats()
            .with_max_candidates(100)
            .per_query_pipeline();
        assert_eq!(req.queries().len(), 2);
        assert_eq!(req.mode(), SearchMode::Knn(5));
        assert_eq!(req.radius_override(), Some(1.2));
        assert_eq!(req.strategy_override(), Some(QueryStrategy::unoptimized()));
        assert!(req.collects_stats());
        assert!(!req.profiles());
        assert_eq!(req.max_candidates(), Some(100));
        assert!(req.uses_per_query_pipeline());
        assert!(req.validate(4).is_ok());
    }

    #[test]
    fn profiling_implies_stats() {
        let req = SearchRequest::query(v(vec![(0, 1.0)])).with_profiling();
        assert!(req.profiles());
        assert!(req.collects_stats());
    }

    #[test]
    fn validate_rejects_bad_requests() {
        let req = SearchRequest::query(v(vec![(9, 1.0)]));
        assert_eq!(
            req.validate(4).unwrap_err(),
            PlshError::DimensionOutOfRange { index: 9, dim: 4 }
        );
        let req = SearchRequest::query(v(vec![(0, 1.0)])).with_radius(4.0);
        assert!(req.validate(4).is_err());
        let req = SearchRequest::query(v(vec![(0, 1.0)])).with_radius(-1.0);
        assert!(req.validate(4).is_err());
        let req = SearchRequest::query(v(vec![(0, 1.0)])).with_max_candidates(0);
        assert!(req.validate(4).is_err());
    }

    #[test]
    fn rank_top_k_orders_and_truncates() {
        let mut hits = vec![
            SearchHit {
                node: 1,
                index: 4,
                distance: 0.5,
            },
            SearchHit {
                node: 0,
                index: 9,
                distance: 0.1,
            },
            SearchHit {
                node: 0,
                index: 2,
                distance: 0.5,
            },
            SearchHit {
                node: 0,
                index: 7,
                distance: 0.3,
            },
        ];
        rank_top_k(&mut hits, 3);
        assert_eq!(
            hits.iter().map(|h| (h.node, h.index)).collect::<Vec<_>>(),
            vec![(0, 9), (0, 7), (0, 2)],
            "ascending by distance, ties by (node, index)"
        );
    }

    #[test]
    fn rank_top_k_global_ignores_node_attribution() {
        // Same distances as a single-node ranking, but scattered over
        // shards: the global merge must order by (distance, index) alone.
        let mut hits = vec![
            SearchHit {
                node: 3,
                index: 4,
                distance: 0.5,
            },
            SearchHit {
                node: 0,
                index: 9,
                distance: 0.1,
            },
            SearchHit {
                node: 2,
                index: 2,
                distance: 0.5,
            },
            SearchHit {
                node: 1,
                index: 7,
                distance: 0.3,
            },
        ];
        rank_top_k_global(&mut hits, 3);
        assert_eq!(
            hits.iter().map(|h| h.index).collect::<Vec<_>>(),
            vec![9, 7, 2],
            "tie at 0.5 resolves by global index, not by shard"
        );
    }

    #[test]
    fn response_accessors_handle_empty() {
        let resp = SearchResponse {
            results: Vec::new(),
            stats: None,
            phase_timings: None,
            epoch: None,
            timed_out_shards: Vec::new(),
        };
        assert!(resp.hits().is_empty());
        assert_eq!(resp.total_hits(), 0);
        assert!(resp.into_hits().is_empty());
    }
}
