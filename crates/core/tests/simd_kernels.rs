//! Property tests for the runtime-dispatched SIMD kernels: whatever level
//! the CPU dispatches to, the explicit kernels must agree with the scalar
//! references over random sparse vectors, dimensions, and lane counts —
//! including remainder lanes (`n_hashes % 8 != 0`).
//!
//! The hashing kernels carry the stronger contract (bit-identical, since
//! they preserve per-lane accumulation order and avoid FMA); the masked dot
//! product only promises agreement within floating-point reassociation
//! tolerance, which is what the query pipeline's radius filter tolerates.

use proptest::prelude::*;

use plsh_core::hash::Hyperplanes;
use plsh_core::simd;
use plsh_parallel::ThreadPool;

const DIM: u32 = 96;

/// Random sparse (index, value) pairs with strictly increasing indices.
fn sparse_pairs(max_len: usize) -> impl Strategy<Value = Vec<(u32, f32)>> {
    proptest::collection::btree_map(0..DIM, -50i32..50, 1..max_len)
        .prop_map(|m| m.into_iter().map(|(d, v)| (d, v as f32 / 8.0)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dispatched_accumulate_matches_scalar(
        pairs in sparse_pairs(12),
        n_hashes in 1u32..40,
        seed in 0u64..500,
    ) {
        let pool = ThreadPool::new(1);
        let planes = Hyperplanes::new_dense(DIM, n_hashes, seed, &pool);
        let (idx, val): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
        let mut fast = vec![0.25f32; n_hashes as usize];
        let mut slow = fast.clone();
        planes.accumulate(&idx, &val, &mut fast);
        planes.accumulate_scalar(&idx, &val, &mut slow);
        for (j, (f, s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!((f - s).abs() <= 1e-4, "lane {j}: {f} vs {s}");
            prop_assert_eq!(
                f.to_bits(), s.to_bits(),
                "hashing kernel must be bit-identical at lane {}", j
            );
        }
    }

    #[test]
    fn batched_accumulate_matches_scalar(
        queries in proptest::collection::vec(sparse_pairs(8), 1..6),
        n_hashes in 1u32..40,
        seed in 0u64..500,
    ) {
        let pool = ThreadPool::new(1);
        let planes = Hyperplanes::new_dense(DIM, n_hashes, seed, &pool);
        let nh = n_hashes as usize;
        let split: Vec<(Vec<u32>, Vec<f32>)> = queries
            .iter()
            .map(|q| q.iter().copied().unzip())
            .collect();
        let views: Vec<(&[u32], &[f32])> = split
            .iter()
            .map(|(i, v)| (i.as_slice(), v.as_slice()))
            .collect();
        let mut accs = vec![0.0f32; queries.len() * nh];
        planes.accumulate_batch(&views, &mut accs);
        for (q, (idx, val)) in split.iter().enumerate() {
            let mut single = vec![0.0f32; nh];
            planes.accumulate_scalar(idx, val, &mut single);
            for (j, (f, s)) in accs[q * nh..(q + 1) * nh].iter().zip(&single).enumerate() {
                prop_assert!((f - s).abs() <= 1e-4, "query {q} lane {j}: {f} vs {s}");
                prop_assert_eq!(
                    f.to_bits(), s.to_bits(),
                    "batched hashing must be bit-identical (query {}, lane {})", q, j
                );
            }
        }
    }

    #[test]
    fn dot_via_mask_matches_scalar(
        row in sparse_pairs(16),
        query in sparse_pairs(16),
    ) {
        let (idx, val): (Vec<u32>, Vec<f32>) = row.into_iter().unzip();
        let mut qmask = vec![0u64; (DIM as usize).div_ceil(64)];
        // Stale garbage outside the flagged positions must be masked off.
        let mut qvals = vec![f32::NAN; DIM as usize];
        for &(d, v) in &query {
            qmask[(d >> 6) as usize] |= 1u64 << (d & 63);
            qvals[d as usize] = v;
        }
        let fast = simd::dot_via_mask(&idx, &val, &qmask, &qvals);
        let slow = simd::dot_via_mask_scalar(&idx, &val, &qmask, &qvals);
        prop_assert!((fast - slow).abs() <= 1e-4, "{fast} vs {slow}");
    }
}
