//! Property-based tests on plsh-core invariants that span modules.

use proptest::prelude::*;

use plsh_core::hash::{allpairs, Hyperplanes, SketchMatrix};
use plsh_core::params::{self, PlshParams};
use plsh_core::query::QueryStrategy;
use plsh_core::sparse::{CrsMatrix, SparseVector};
use plsh_core::table::{BuildStrategy, DeltaGeneration, DeltaLayout, MergeStepper, StaticTables};
use plsh_core::{Engine, EngineConfig, SearchRequest};
use plsh_parallel::ThreadPool;

const DIM: u32 = 48;

fn sparse_vec_strategy() -> impl Strategy<Value = SparseVector> {
    proptest::collection::btree_map(0..DIM, 1u32..100, 1..6).prop_map(|m| {
        let pairs: Vec<(u32, f32)> = m.into_iter().map(|(d, v)| (d, v as f32 / 7.0)).collect();
        SparseVector::unit(pairs).expect("non-empty positive pairs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_product_is_symmetric_and_cauchy_schwarz(
        a in sparse_vec_strategy(),
        b in sparse_vec_strategy(),
    ) {
        let ab = a.dot(&b);
        let ba = b.dot(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        // Unit vectors: |a.b| <= 1 (+ fp slack).
        prop_assert!(ab.abs() <= 1.0 + 1e-5);
        // Distance axioms (identity, symmetry).
        prop_assert!(a.angular_distance(&a) < 1e-3);
        let d1 = a.angular_distance(&b);
        let d2 = b.angular_distance(&a);
        prop_assert!((d1 - d2).abs() < 1e-5);
        prop_assert!((0.0..=std::f32::consts::PI + 1e-5).contains(&d1));
    }

    #[test]
    fn triangle_inequality_holds(
        a in sparse_vec_strategy(),
        b in sparse_vec_strategy(),
        c in sparse_vec_strategy(),
    ) {
        // Angular distance on the sphere is a metric.
        let ab = a.angular_distance(&b) as f64;
        let bc = b.angular_distance(&c) as f64;
        let ac = a.angular_distance(&c) as f64;
        prop_assert!(ac <= ab + bc + 1e-4, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn identical_vectors_share_every_half_key(
        v in sparse_vec_strategy(),
        seed in 0u64..1000,
    ) {
        let pool = ThreadPool::new(1);
        let planes = Hyperplanes::new_dense(DIM, 4 * 3, seed, &pool);
        let mut corpus = CrsMatrix::new(DIM);
        corpus.push(&v).unwrap();
        corpus.push(&v).unwrap();
        let mut sk = SketchMatrix::new(4, 3);
        sk.append_from(&corpus, &planes, 0, &pool, true);
        prop_assert_eq!(sk.row(0), sk.row(1));
    }

    #[test]
    fn collision_rate_decreases_with_angle(
        seed in 0u64..100,
    ) {
        // Empirical check of p(t) = 1 - t/pi monotonicity through the
        // actual hash pipeline: closer pairs collide on more half-keys.
        let pool = ThreadPool::new(1);
        let planes = Hyperplanes::new_dense(DIM, 64, seed, &pool);
        let base = SparseVector::unit(vec![(0, 1.0), (1, 1.0), (2, 1.0)]).unwrap();
        let near = SparseVector::unit(vec![(0, 1.0), (1, 1.0), (3, 1.0)]).unwrap();
        let far = SparseVector::unit(vec![(10, 1.0), (11, 1.0), (12, 1.0)]).unwrap();
        let mut corpus = CrsMatrix::new(DIM);
        corpus.push(&base).unwrap();
        corpus.push(&near).unwrap();
        corpus.push(&far).unwrap();
        let mut sk = SketchMatrix::new(64, 1);
        sk.append_from(&corpus, &planes, 0, &pool, true);
        let agree = |x: u32, y: u32| {
            (0..64u32).filter(|&a| sk.half_key(x, a) == sk.half_key(y, a)).count()
        };
        // near shares 2/3 words with base; far shares none. With 64
        // independent sign bits the ordering is overwhelming.
        prop_assert!(agree(0, 1) > agree(0, 2),
            "near {} vs far {}", agree(0, 1), agree(0, 2));
    }

    #[test]
    fn recall_formula_bounds_table_collision(t in 0.01f64..3.1, k in 1u32..16, m in 2u32..30) {
        let k = k * 2;
        let p = PlshParams::collision_probability(t);
        let full = p.powi(k as i32);
        let r = params::recall(t, k, m);
        // Recall through L tables is at least the single-table collision
        // probability whenever at least one table exists... specifically
        // P'(t) >= p^k * (something); weak sanity: both in [0,1] and
        // P' >= p^k - epsilon is NOT generally true for m=2; instead check
        // P' <= 1 and P' >= 0 and monotone bound: P'(t) <= sum of table
        // collisions L * p^k (union bound).
        let l = (m * (m - 1) / 2) as f64;
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(r <= (l * full).min(1.0) + 1e-9, "union bound violated");
    }

    #[test]
    fn engine_roundtrip_any_vectors(
        vs in proptest::collection::vec(sparse_vec_strategy(), 1..40),
        merge in any::<bool>(),
    ) {
        let pool = ThreadPool::new(1);
        let params = PlshParams::builder(DIM).k(4).m(5).radius(0.9).seed(3).build().unwrap();
        let e = Engine::new(EngineConfig::new(params, 256).manual_merge(), &pool).unwrap();
        let ids = e.insert_batch(&vs, &pool).unwrap();
        if merge {
            e.merge_delta(&pool);
        }
        // Every vector finds itself (identical hash in every table).
        for (v, &id) in vs.iter().zip(&ids) {
            let hits = e.query(v);
            prop_assert!(hits.iter().any(|h| h.index == id && h.distance < 1e-3));
        }
    }

    #[test]
    fn every_strategy_combination_agrees(
        vs in proptest::collection::vec(sparse_vec_strategy(), 8..40),
        bitvector in any::<bool>(),
        sparse_dot in any::<bool>(),
        cand_array in any::<bool>(),
    ) {
        let pool = ThreadPool::new(1);
        let params = PlshParams::builder(DIM).k(4).m(5).radius(0.9).seed(9).build().unwrap();
        let e = Engine::new(EngineConfig::new(params, 256).manual_merge(), &pool).unwrap();
        e.insert_batch(&vs, &pool).unwrap();
        e.merge_delta(&pool);
        let strategy = QueryStrategy {
            bitvector_dedup: bitvector,
            optimized_sparse_dot: sparse_dot,
            candidate_array: cand_array,
            huge_pages: false,
        };
        let q = vs[0].clone();
        let mut expect: Vec<u32> = e
            .search(
                &SearchRequest::query(q.clone()).with_strategy(QueryStrategy::optimized()),
                &pool,
            )
            .unwrap()
            .hits()
            .iter()
            .map(|h| h.index)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u32> = e
            .search(&SearchRequest::query(q).with_strategy(strategy), &pool)
            .unwrap()
            .hits()
            .iter()
            .map(|h| h.index)
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn build_strategies_agree_on_random_corpora(
        vs in proptest::collection::vec(sparse_vec_strategy(), 1..60),
    ) {
        let pool = ThreadPool::new(2);
        let planes = Hyperplanes::new_dense(DIM, 4 * 2, 7, &pool);
        let mut corpus = CrsMatrix::new(DIM);
        for v in &vs {
            corpus.push(v).unwrap();
        }
        let mut sk = SketchMatrix::new(4, 2);
        sk.append_from(&corpus, &planes, 0, &pool, true);
        let one = StaticTables::build(&sk, BuildStrategy::OneLevel, &pool);
        let shared = StaticTables::build(&sk, BuildStrategy::TwoLevelShared, &pool);
        for l in 0..allpairs::num_tables(4) as usize {
            for key in 0..16u32 {
                prop_assert_eq!(one.bucket(l, key), shared.bucket(l, key));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental merge is bit-identical to the monolithic one for
    /// *every* slice budget, and the published epoch plus live ingest are
    /// untouched while the stepper is mid-flight — the correctness core
    /// of cooperative merge pacing.
    #[test]
    fn stepped_merge_is_bit_identical_to_monolithic(
        n_static in 0usize..120,
        n_gen1 in 1usize..60,
        n_gen2 in 0usize..60,
        victims in proptest::collection::vec(0usize..240, 0..8),
        max_buckets in 1usize..80,
        max_rows in 1usize..50,
        seed in 0u64..500,
    ) {
        let pool = ThreadPool::new(1);
        let (m, half_bits) = (4u32, 3u32);
        let total = n_static + n_gen1 + n_gen2;

        // Deterministic corpus from the seed.
        let mut corpus = CrsMatrix::new(DIM);
        for i in 0..total as u64 {
            let a = ((i * 7 + seed) % DIM as u64) as u32;
            let b = ((i * 13 + seed / 3 + 1) % DIM as u64) as u32;
            let v = if a == b {
                SparseVector::unit(vec![(a, 1.0)]).unwrap()
            } else {
                SparseVector::unit(vec![(a, 1.0), (b, 0.25 + (i % 9) as f32 * 0.1)])
                    .unwrap()
            };
            corpus.push(&v).unwrap();
        }
        let planes = Hyperplanes::new_dense(DIM, m * half_bits, seed ^ 0x5eed, &pool);
        let mut sk_all = SketchMatrix::new(m, half_bits);
        sk_all.append_from(&corpus, &planes, 0, &pool, true);

        // Static prefix + one or two sealed generations over the rest.
        let prev =
            StaticTables::build_prefix(&sk_all, n_static, BuildStrategy::TwoLevelShared, &pool);
        let mk_gen = |base: usize, end: usize| {
            let mut g = DeltaGeneration::new(
                base as u32,
                DIM,
                m,
                half_bits,
                DeltaLayout::Adaptive,
                end - base,
            );
            let vs: Vec<SparseVector> =
                (base..end).map(|i| corpus.row_vector(i as u32)).collect();
            g.append(&vs, &planes, true, &pool).unwrap();
            std::sync::Arc::new(g)
        };
        let mut gens = vec![mk_gen(n_static, n_static + n_gen1)];
        if n_gen2 > 0 {
            gens.push(mk_gen(n_static + n_gen1, total));
        }

        // Arbitrary tombstone snapshot (ids folded into range).
        let mut purge = vec![0u64; total.div_ceil(64)];
        for v in &victims {
            let id = v % total;
            purge[id >> 6] |= 1 << (id & 63);
        }

        let prev_opt = (n_static > 0).then_some(&prev);
        let mono = StaticTables::merge_generations(
            prev_opt, m, half_bits, total, &gens, &purge, 0, 0, &pool,
        );

        // Stepped run with the drawn slice budgets, interleaving the two
        // things a paced merge overlaps with: reads of the published
        // epoch and appends to a *new* (uninvolved) generation.
        let witness_key = (seed % 64) as u32;
        let witness: Vec<u32> = prev.bucket(0, witness_key).to_vec();
        let mut side = DeltaGeneration::new(
            total as u32, DIM, m, half_bits, DeltaLayout::Adaptive, 4,
        );
        let mut stepper = MergeStepper::new(prev_opt, m, half_bits, total, &gens, &purge, 0, 0);
        let mut steps = 0usize;
        while stepper.step(max_buckets, max_rows) {
            steps += 1;
            if steps.is_multiple_of(3) {
                // A "query" between slices: the published epoch is
                // untouched mid-merge.
                prop_assert_eq!(prev.bucket(0, witness_key), &witness[..]);
            }
            if steps == 5 {
                // An "insert" between slices: live ingest keeps filing
                // into a fresh generation while the merge is mid-flight.
                side.append(
                    &[corpus.row_vector(0)], &planes, true, &pool,
                ).unwrap();
            }
        }
        prop_assert!(stepper.is_done());
        let stepped = stepper.finish();

        prop_assert_eq!(stepped.num_points(), mono.num_points());
        let buckets = 1u32 << (2 * half_bits);
        for l in 0..mono.num_tables() {
            for key in 0..buckets {
                prop_assert_eq!(
                    stepped.bucket(l, key),
                    mono.bucket(l, key),
                    "diverged at table {} key {} (budgets {}/{})",
                    l, key, max_buckets, max_rows
                );
            }
        }
    }
}
