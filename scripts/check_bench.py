#!/usr/bin/env python3
"""Validate the repro harness's committed/regenerated benchmark reports.

Usage:
    python3 scripts/check_bench.py [--expect-scale SCALE] FILE [FILE ...]

Each FILE is one of the JSON reports the `repro` binary writes
(BENCH_query.json, BENCH_streaming.json, BENCH_cluster.json); the
experiment is inferred from the report's own "experiment" field. The
script asserts the structural invariants each experiment guarantees, plus
the design bars:

* throughput — five Figure-5 ablation levels, positive qps/phase times,
  `answers_match` (the batched pipeline must not change answers), and the
  "+large pages" level not regressing against "+sw prefetch" (all levels
  share one best-of-REPS protocol, so a regression is real, not a
  measurement artifact).
* streaming — background merges fired, query throughput during ingest
  at least 0.85x quiesced (the cooperative stepped merge yields to
  queries, so ingest must no longer halve query throughput; 0.5x on a
  single-hardware-thread host where the ingest thread itself timeslices
  against the query thread), per-batch p99 latency recorded for both
  phases, probes found in every batch, epochs always consistent.
* recovery — the durability experiment: a generation-segmented layout
  with a live WAL tail at crash time, positive journaled-ingest and
  replay rates, recovered answers bit-identical to the in-memory twin,
  and every pre-crash tombstone surviving.
* faults — the chaos soak: faults actually injected, every injected
  worker panic matched by a supervisor restart, at least one degraded
  read-only episode with reads still answering, positive recovery time
  and under-fault throughput (zero means a hang), post-heal answers
  bit-identical to the unfaulted twin, and the journal written through
  the faults recovering to those same answers.
* serve — the HTTP wire surface under concurrent client load: positive
  served qps and client-observed p50/p99 in both phases (during live
  `/ingest` traffic and quiesced), shed_rate present in [0, 1] (shedding
  is legal under overload), error_rate exactly 0 (a failed well-formed
  request is a server bug at any scale), merges fired while serving, and
  wire answers bit-identical to in-process search.
* soak — the long-haul sliding-window run: several window-lengths of
  stream through a windowed engine, RSS flat after warm-up (<= 1.25x —
  a per-doc leak over 8 window turnovers would read 2-3x), live points
  pinned at exactly the window size once filled, the watermark monotone
  and landing exactly at `docs_streamed - window`, the resident span
  never exceeding capacity, query throughput never collapsing, and zero
  leaks after the quiescing merge (no sealed generation, no retired row
  still resident).
* scaling — the 1/2/4/8-shard sweep: `answers_match` per shard count and
  multi-shard query qps >= 1.5x the 1-shard configuration. The speedup
  bar expresses cross-shard parallelism (quiesced) or merge-amplification
  relief (during ingest), so it is enforced only when the measuring host
  had >= 2 hardware threads; a 1-thread host serializes every shard task
  and the sweep degenerates to an overhead measurement (still checked for
  answer equivalence and merge activity).

Every report also records the measuring host's hardware-thread count and
how many pool workers actually pinned to a core (`host_threads`,
`pinned_workers`); the checker cross-checks them — pinning requires at
least two hardware threads, so a 1-thread host must report zero pinned
workers.

`--expect-scale quick` (used by CI) additionally asserts the reports came
from this run's quick corpus rather than a stale committed full-scale
artifact.
"""

import argparse
import json
import sys

SIMD_LEVELS = ("scalar", "sse2", "avx2")
SCALING_SPEEDUP_BAR = 1.5
# The cooperative stepped merge yields to in-flight queries, so ingest
# must cost queries at most ~15% of quiesced throughput (was 0.5 when the
# merge ran monolithically and could stall a whole rebuild's worth). On a
# single hardware thread the ingest thread itself timeslices against the
# query thread — interference the scheduler, not the merge, imposes — so
# the bar stays at the old monolithic-merge floor there.
STREAMING_DURING_FLOOR = 0.85
STREAMING_DURING_FLOOR_1CPU = 0.5
# "+large pages" vs "+sw prefetch": the level adds an madvise hint that is
# a no-op below the table-size threshold and a win above it, so it must
# never lose — beyond a 10% allowance for run-to-run noise on shared hosts.
ABLATION_REGRESSION_FLOOR = 0.9
# The soak's flat-memory bar: RSS at the last interval over RSS at the
# end of warm-up. The run streams ~8 window-lengths, so a genuine
# per-document leak reads as 2-3x here; 1.25 absorbs allocator high-water
# drift without masking growth.
SOAK_RSS_GROWTH_CEIL = 1.25
# Query throughput may wobble with merge phase, but must never collapse:
# the slowest post-warmup interval stays within 4x of the median.
SOAK_QPS_COLLAPSE_FLOOR = 0.25


def fail(path, msg):
    raise SystemExit(f"{path}: {msg}")


def check_common(path, d, expect_scale):
    for key in ("experiment", "scale", "threads"):
        if key not in d:
            fail(path, f"missing field {key!r}")
    if expect_scale is not None and d["scale"] != expect_scale:
        fail(path, f"scale is {d['scale']!r}, expected {expect_scale!r} "
                   "(stale committed report instead of this run's output?)")
    if not (isinstance(d["threads"], int) and d["threads"] >= 1):
        fail(path, f"threads must be a positive integer, got {d['threads']!r}")
    for key in ("host_threads", "pinned_workers"):
        if key not in d:
            fail(path, f"missing field {key!r} (reports must record the "
                       "measuring host's topology)")
    host, pinned = d["host_threads"], d["pinned_workers"]
    if not (isinstance(host, int) and host >= 1):
        fail(path, f"host_threads must be a positive integer, got {host!r}")
    if not (isinstance(pinned, int) and pinned >= 0):
        fail(path, f"pinned_workers must be a non-negative integer, got {pinned!r}")
    if host < 2 and pinned != 0:
        fail(path, f"pinning is gated on >= 2 hardware threads but a "
                   f"{host}-thread host reports {pinned} pinned worker(s)")


def check_throughput(path, d):
    if d["simd_level"] not in SIMD_LEVELS:
        fail(path, f"unknown simd_level {d['simd_level']!r}")
    if len(d["levels"]) != 5:
        fail(path, f"expected five Figure-5 ablation levels, got {len(d['levels'])}")
    for lvl in d["levels"] + [d["batched_pipeline"]]:
        if not (lvl["qps"] > 0 and lvl["batch_ms"] > 0):
            fail(path, f"non-positive throughput entry: {lvl}")
    for phase in ("q2", "q3"):
        if not d["phase_ns_per_query"][phase] > 0:
            fail(path, f"phase_ns_per_query[{phase!r}] must be positive")
    if d["answers_match"] is not True:
        fail(path, "batched pipeline changed answers")
    prefetch, large = d["levels"][3], d["levels"][4]
    if large["qps"] < ABLATION_REGRESSION_FLOOR * prefetch["qps"]:
        fail(path, f"ablation regression: {large['name']!r} at {large['qps']} qps "
                   f"vs {prefetch['name']!r} at {prefetch['qps']} qps "
                   f"(floor {ABLATION_REGRESSION_FLOOR})")
    print(f"{path} OK: batched pipeline {json.dumps(d['batched_pipeline'])}")


def check_recovery(path, d):
    if not (isinstance(d["docs"], int) and d["docs"] > 0):
        fail(path, f"docs must be positive, got {d['docs']!r}")
    if d["generation_segments"] < 1:
        fail(path, "crash layout must include sealed generation segments")
    if d["wal_points"] < 1:
        fail(path, "crash layout must include a live WAL tail "
                   "(recovery must exercise the replay path)")
    if d["static_points"] + d["wal_points"] > d["docs"]:
        fail(path, f"layout does not add up: {d['static_points']} static + "
                   f"{d['wal_points']} WAL > {d['docs']} docs")
    for key in ("ingest_qps_journaled", "ingest_qps_memory",
                "recovery_ms", "replay_points_per_sec"):
        if not d[key] > 0:
            fail(path, f"{key} must be positive, got {d[key]!r}")
    if d["tombstones"] < 1:
        fail(path, "the schedule must issue tombstones before the crash")
    if d["answers_match"] is not True:
        fail(path, "recovered answers diverged from the in-memory twin")
    if d["tombstones_survived"] is not True:
        fail(path, "a pre-crash tombstone was lost in recovery")
    print(f"{path} OK: recovered {d['docs']} docs "
          f"({d['wal_points']} from the WAL) in {d['recovery_ms']} ms")


def check_streaming(path, d):
    if not (d["insert_qps"] > 0 and d["ingest_points"] > 0):
        fail(path, f"ingest must have run: {d['insert_qps']=} {d['ingest_points']=}")
    if d["merges"] < 1:
        fail(path, "background merges must have fired")
    if not (d["query_qps_during_ingest"] > 0 and d["query_qps_quiesced"] > 0):
        fail(path, "query throughput must be positive in both phases")
    floor = (STREAMING_DURING_FLOOR if d["host_threads"] >= 2
             else STREAMING_DURING_FLOOR_1CPU)
    if d["during_over_quiesced"] < floor:
        fail(path, f"during/quiesced {d['during_over_quiesced']} below the "
                   f"{floor} floor on a {d['host_threads']}-thread host")
    for key in ("query_p50_ms_during_ingest", "query_p99_ms_during_ingest",
                "query_p50_ms_quiesced", "query_p99_ms_quiesced"):
        if not d.get(key, 0) > 0:
            fail(path, f"{key} must be positive, got {d.get(key)!r}")
    for phase in ("during_ingest", "quiesced"):
        if d[f"query_p99_ms_{phase}"] < d[f"query_p50_ms_{phase}"]:
            fail(path, f"p99 below p50 in the {phase} phase")
    if d["probe_always_found"] is not True:
        fail(path, "a query batch missed a sealed point")
    if d["epoch_always_consistent"] is not True:
        fail(path, "half-merged epoch observed")
    print(f"{path} OK: during/quiesced = {d['during_over_quiesced']}, "
          f"p99 during/quiesced = {d['query_p99_ms_during_ingest']} / "
          f"{d['query_p99_ms_quiesced']} ms")


def check_scaling(path, d):
    configs = d["configs"]
    if [c["shards"] for c in configs] != [1, 2, 4, 8]:
        fail(path, f"expected the 1/2/4/8 shard sweep, got {[c['shards'] for c in configs]}")
    for c in configs:
        if c["answers_match"] is not True:
            fail(path, f"{c['shards']}-shard answers diverged from the single engine")
        if not (c["ingest_qps"] > 0 and c["query_qps_during_ingest"] > 0
                and c["query_qps_quiesced"] > 0):
            fail(path, f"non-positive throughput at {c['shards']} shards: {c}")
        for key in ("query_p99_ms_during_ingest", "query_p99_ms_quiesced"):
            if not c.get(key, 0) > 0:
                fail(path, f"{key} must be positive at {c['shards']} shards, "
                           f"got {c.get(key)!r}")
        if c["merges"] < 1:
            fail(path, f"no merges fired at {c['shards']} shards "
                       "(the sweep must exercise the merge path)")
    if d["answers_match"] is not True:
        fail(path, "aggregate answers_match must be true")
    if not (1 <= d["model_predicted_shards"] <= 64):
        fail(path, f"implausible model_predicted_shards {d['model_predicted_shards']}")
    speedup = d["multi_shard_speedup"]
    if d["threads"] >= 2:
        if speedup < SCALING_SPEEDUP_BAR:
            fail(path, f"multi-shard speedup {speedup} below the "
                       f"{SCALING_SPEEDUP_BAR}x bar on a {d['threads']}-thread host")
        print(f"{path} OK: multi-shard speedup {speedup}x (bar {SCALING_SPEEDUP_BAR}x)")
    else:
        # One hardware thread serializes the fan-out: every shard visit
        # adds Q1 + bucket-probe overhead with nothing to parallelize
        # against, so the speedup bar is meaningless — but the sweep must
        # still stay within sane overhead (a collapse would flag a
        # coordination bug, not just missing cores).
        if speedup <= 0:
            fail(path, f"non-positive multi-shard speedup {speedup}")
        print(f"{path} OK: answers match at every shard count "
              f"(speedup bar skipped: single-thread host, measured {speedup}x)")


def check_faults(path, d):
    if not (isinstance(d["docs"], int) and d["docs"] > 0):
        fail(path, f"docs must be positive, got {d['docs']!r}")
    if d["faults_injected"] < 1:
        fail(path, "the chaos soak must actually inject faults")
    if d["supervisor_restarts"] < d["injected_panics"]:
        fail(path, f"{d['injected_panics']} injected worker panics but only "
                   f"{d['supervisor_restarts']} supervisor restarts "
                   "(a panic escaped supervision)")
    if d["degraded_episodes"] < 1:
        fail(path, "the persistent-failure phase must trip degraded "
                   "read-only mode at least once")
    if not d["time_to_recover_ms"] > 0:
        fail(path, f"time_to_recover_ms must be positive, got "
                   f"{d['time_to_recover_ms']!r}")
    for key in ("qps_under_fault", "qps_clean"):
        if not d[key] > 0:
            fail(path, f"{key} must be positive, got {d[key]!r} "
                       "(a zero rate means the soak hung or never ran)")
    if d["reads_survived_degraded"] is not True:
        fail(path, "queries stopped answering while the engine was degraded")
    if d["answers_match"] is not True:
        fail(path, "post-heal answers diverged from the unfaulted twin")
    if d["recovered_match"] is not True:
        fail(path, "the journal written through the faults did not recover "
                   "to the twin's answers")
    print(f"{path} OK: {d['faults_injected']} faults, "
          f"{d['supervisor_restarts']} restart(s), "
          f"{d['degraded_episodes']} degraded episode(s), "
          f"recovered in {d['time_to_recover_ms']} ms")


def check_serve(path, d):
    if not (isinstance(d["clients"], int) and d["clients"] >= 1):
        fail(path, f"clients must be a positive integer, got {d['clients']!r}")
    if not (d["ingest_points"] > 0 and d["requests_during_ingest"] > 0):
        fail(path, "the served-ingest phase must have carried traffic: "
                   f"{d['ingest_points']=} {d['requests_during_ingest']=}")
    if d["merges_during_ingest"] < 1:
        fail(path, "background merges must have fired while serving")
    for phase in ("during_ingest", "quiesced"):
        if not d[f"qps_{phase}"] > 0:
            fail(path, f"qps_{phase} must be positive")
        p50, p99 = d[f"p50_ms_{phase}"], d[f"p99_ms_{phase}"]
        if not (p99 > 0 and p50 > 0):
            fail(path, f"latency percentiles must be positive in the "
                       f"{phase} phase, got p50={p50!r} p99={p99!r}")
        if p99 < p50:
            fail(path, f"p99 below p50 in the {phase} phase")
    for key in ("shed_rate", "error_rate"):
        if key not in d or not (0.0 <= d[key] <= 1.0):
            fail(path, f"{key} must be present in [0, 1], got {d.get(key)!r}")
    # Load shedding is legitimate under overload, but a *failed* request
    # is a server bug at any scale — the wire surface never errors on
    # well-formed traffic.
    if d["error_rate"] != 0:
        fail(path, f"error_rate must be 0, got {d['error_rate']!r}")
    if d["answers_match"] is not True:
        fail(path, "wire answers diverged from in-process search")
    print(f"{path} OK: {d['qps_during_ingest']} qps during ingest / "
          f"{d['qps_quiesced']} quiesced, p99 {d['p99_ms_during_ingest']} / "
          f"{d['p99_ms_quiesced']} ms, shed_rate {d['shed_rate']}")


def check_soak(path, d):
    window, capacity = d["window"], d["capacity"]
    if not (isinstance(window, int) and window > 0):
        fail(path, f"window must be a positive integer, got {window!r}")
    if capacity <= window:
        fail(path, f"capacity {capacity} must exceed the window {window} "
                   "(it bounds the resident span: live window + retired "
                   "rows awaiting compaction)")
    if d["docs_streamed"] < 4 * window:
        fail(path, f"a soak must stream >= 4 window-lengths, got "
                   f"{d['docs_streamed']} over window {window}")
    n = d["intervals"]
    if n < 8:
        fail(path, f"need >= 8 measurement intervals, got {n}")
    series = ("docs", "rss_mb", "table_mb", "live_points",
              "retired_pending_purge", "insert_qps", "query_qps")
    for key in series:
        if len(d[key]) != n:
            fail(path, f"series {key!r} has {len(d[key])} entries, "
                       f"expected {n}")
    if d["docs"] != sorted(d["docs"]) or len(set(d["docs"])) != n:
        fail(path, "docs series must be strictly increasing")
    warmup = d["warmup_intervals"]
    if not (0 < warmup < n):
        fail(path, f"warmup_intervals {warmup!r} must split the run")
    for i in range(n):
        if d["docs"][i] >= window and d["live_points"][i] != window:
            fail(path, f"interval {i}: window filled ({d['docs'][i]} docs) "
                       f"but live_points is {d['live_points'][i]}, "
                       f"expected exactly {window}")
        span = d["live_points"][i] + d["retired_pending_purge"][i]
        if span > capacity:
            fail(path, f"interval {i}: resident span {span} exceeds "
                       f"capacity {capacity}")
        for key in ("insert_qps", "query_qps"):
            if not d[key][i] > 0:
                fail(path, f"interval {i}: {key} must be positive, "
                           f"got {d[key][i]!r} (the soak stalled)")
    if d["watermark_monotone"] is not True:
        fail(path, "the retirement watermark moved backwards")
    if d["span_always_bounded"] is not True:
        fail(path, "the resident span exceeded capacity during the soak")
    # The flat-ceiling headline.
    if not d["rss_warmup_mb"] > 0:
        fail(path, f"rss_warmup_mb must be positive (is /proc/self/statm "
                   f"readable on the measuring host?), got {d['rss_warmup_mb']!r}")
    if d["rss_growth"] > SOAK_RSS_GROWTH_CEIL:
        fail(path, f"memory grew {d['rss_growth']}x after warm-up "
                   f"({d['rss_warmup_mb']} -> {d['rss_final_mb']} MB; "
                   f"ceiling {SOAK_RSS_GROWTH_CEIL}x) — the window is leaking")
    # Steady qps: no post-warmup collapse.
    tail = sorted(d["query_qps"][warmup:])
    median = tail[len(tail) // 2]
    if tail[0] < SOAK_QPS_COLLAPSE_FLOOR * median:
        fail(path, f"query qps collapsed: slowest post-warmup interval "
                   f"{tail[0]} vs median {median} "
                   f"(floor {SOAK_QPS_COLLAPSE_FLOOR}x)")
    # Zero-leak facts after the quiescing merge.
    if d["final_live"] != window:
        fail(path, f"final_live {d['final_live']} != window {window}")
    expected = d["docs_streamed"] - window
    if d["expected_retired"] != expected or d["final_retired"] != expected:
        fail(path, f"watermark must land exactly at docs - window = "
                   f"{expected}, got final_retired {d['final_retired']} "
                   f"(expected_retired {d['expected_retired']})")
    if d["final_sealed_generations"] != 0:
        fail(path, f"{d['final_sealed_generations']} sealed generation(s) "
                   "leaked past the quiescing merge")
    if d["final_retired_pending_purge"] != 0:
        fail(path, f"{d['final_retired_pending_purge']} retired row(s) "
                   "still resident after the quiescing merge "
                   "(compaction skipped the expired prefix)")
    if d["merges"] < 1:
        fail(path, "background merges must have fired during the soak")
    print(f"{path} OK: {d['docs_streamed']} docs through a {window}-doc "
          f"window, RSS growth {d['rss_growth']}x "
          f"(ceiling {SOAK_RSS_GROWTH_CEIL}x), zero leaks after quiesce")


CHECKS = {
    "throughput": check_throughput,
    "serve": check_serve,
    "streaming": check_streaming,
    "scaling": check_scaling,
    "recovery": check_recovery,
    "faults": check_faults,
    "soak": check_soak,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--expect-scale", choices=("quick", "full"), default=None)
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    for path in args.files:
        with open(path) as fh:
            d = json.load(fh)
        check_common(path, d, args.expect_scale)
        check = CHECKS.get(d["experiment"])
        if check is None:
            fail(path, f"unknown experiment {d['experiment']!r}")
        check(path, d)
    print(f"all {len(args.files)} report(s) OK")


if __name__ == "__main__":
    sys.exit(main())
