//! First-story detection over a synthetic tweet stream.
//!
//! The paper's Related Work discusses Petrović et al. \[28\], who used LSH
//! on Twitter to flag tweets "highly dissimilar to all preceding tweets" —
//! new stories. This example reproduces that application on top of the
//! [`plsh::Index`] client: each arriving tweet first queries the index;
//! if nothing lies within the radius, it is a first story. Either way it
//! is then inserted.
//!
//! ```text
//! cargo run --release --example first_story_detection
//! ```

use plsh::workload::{CorpusConfig, SyntheticCorpus};
use plsh::{Index, PlshParams};

fn main() -> plsh::Result<()> {
    // A stream where ~35% of tweets are near-duplicates of earlier ones
    // (retweets / reposts) and the rest are fresh stories.
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 8_000,
        vocab_size: 10_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.35,
        seed: 2024,
    });

    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(12)
        .radius(0.9)
        .delta(0.1)
        .seed(7)
        .build()?;
    let index = Index::builder(params)
        .capacity(corpus.len())
        .eta(0.05)
        .build()?;

    let mut true_positive = 0usize; // flagged new, genuinely fresh
    let mut false_positive = 0usize; // flagged new, actually a duplicate
    let mut false_negative = 0usize; // duplicate correctly suppressed
    let mut true_negative = 0usize; // fresh, but a neighbor already existed
    let start = std::time::Instant::now();

    for id in 0..corpus.len() as u32 {
        let tweet = corpus.vector(id);
        // Query BEFORE inserting: is anything already similar?
        let hits = index.query(tweet)?;
        let is_first_story = hits.is_empty();
        let actually_fresh = corpus.duplicate_of(id).is_none();
        match (is_first_story, actually_fresh) {
            (true, true) => true_positive += 1,
            (true, false) => false_positive += 1,
            (false, true) => true_negative += 1, // fresh but echoes old vocab
            (false, false) => false_negative += 1,
        }
        index.add(tweet.clone())?;
    }
    index.flush()?;
    let elapsed = start.elapsed();

    let flagged = true_positive + false_positive;
    println!(
        "processed {} tweets in {:.2?} (query + insert + background merges)",
        corpus.len(),
        elapsed
    );
    println!(
        "merges performed: {} (delta threshold 5% of capacity)",
        index.stats().merges
    );
    println!();
    println!("flagged as first stories: {flagged}");
    println!(
        "  of which genuinely fresh:      {true_positive} ({:.1}% precision)",
        100.0 * true_positive as f64 / flagged.max(1) as f64
    );
    println!("  near-duplicates missed by LSH: {false_positive}");
    println!(
        "duplicates correctly suppressed: {false_negative} of {}",
        false_negative + false_positive
    );
    println!("fresh tweets that still had a neighbor (shared rare words): {true_negative}");

    // Sanity for the example: detection must be much better than chance.
    let dup_suppression = false_negative as f64 / (false_negative + false_positive).max(1) as f64;
    assert!(
        dup_suppression > 0.8,
        "expected >80% of duplicates suppressed, got {:.1}%",
        dup_suppression * 100.0
    );
    Ok(())
}
