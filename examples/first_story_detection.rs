//! First-story detection over a synthetic tweet stream — on a sliding
//! window.
//!
//! The paper's Related Work discusses Petrović et al. \[28\], who used LSH
//! on Twitter to flag tweets "highly dissimilar to all preceding tweets" —
//! new stories. A production first-story detector never compares against
//! *all* preceding tweets, though: only the recent past matters, and the
//! index must not grow without bound. This example reproduces that
//! application on top of the [`plsh::Index`] client with a **retire-by-age
//! window**: `Index::builder(..).with_window(WindowSpec::Docs(W))` keeps
//! exactly the last `W` tweets answerable, retires older ids with a range
//! tombstone as the stream advances, and reclaims their memory in the
//! background merges — no manual delete calls.
//!
//! Each arriving tweet first queries the index; if nothing lies within the
//! radius, it is a first story. Either way it is then inserted. A
//! duplicate whose original has already slid out of the window is
//! *correctly* re-flagged: within the window it is news again.
//!
//! ```text
//! cargo run --release --example first_story_detection
//! ```

use plsh::workload::{CorpusConfig, SyntheticCorpus};
use plsh::{Index, PlshParams, WindowSpec};

/// Only the last WINDOW tweets are comparable — and resident.
const WINDOW: u32 = 2_500;

fn main() -> plsh::Result<()> {
    // A stream where ~35% of tweets are near-duplicates of earlier ones
    // (retweets / reposts) and the rest are fresh stories.
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 8_000,
        vocab_size: 10_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.35,
        seed: 2024,
    });

    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(12)
        .radius(0.9)
        .delta(0.1)
        .seed(7)
        .build()?;
    // Rule of thumb: capacity ≈ 3 × window. The capacity bounds the
    // *resident span* (live window + retired rows awaiting compaction),
    // so the stream can run forever in a fraction of the corpus size.
    let index = Index::builder(params)
        .capacity(3 * WINDOW as usize)
        .eta(0.05)
        .with_window(WindowSpec::Docs(WINDOW))
        .build()?;

    let mut true_positive = 0usize; // flagged new, genuinely fresh
    let mut false_positive = 0usize; // flagged new, duplicate of a LIVE original
    let mut false_negative = 0usize; // in-window duplicate correctly suppressed
    let mut true_negative = 0usize; // fresh, but a neighbor already existed
    let mut resurfaced = 0usize; // duplicate of an EXPIRED original, re-flagged
    let mut resurfaced_suppressed = 0usize; // ...or still caught by a live echo
    let start = std::time::Instant::now();

    for id in 0..corpus.len() as u32 {
        let tweet = corpus.vector(id);
        // Query BEFORE inserting: is anything similar still in the window?
        let hits = index.query(tweet)?;
        let is_first_story = hits.is_empty();
        // The window edge at this instant: ids below it are retired.
        let watermark = id.saturating_sub(WINDOW);
        match corpus.duplicate_of(id) {
            None if is_first_story => true_positive += 1,
            None => true_negative += 1, // fresh but echoes old vocab
            // The original is still live in the window: a detector must
            // suppress this retweet.
            Some(src) if src >= watermark => {
                if is_first_story {
                    false_positive += 1;
                } else {
                    false_negative += 1;
                }
            }
            // The original slid out of the window: the story legitimately
            // resurfaces as news (unless another live echo catches it).
            Some(_) => {
                if is_first_story {
                    resurfaced += 1;
                } else {
                    resurfaced_suppressed += 1;
                }
            }
        }
        index.add(tweet.clone())?;
    }
    index.flush()?;
    let elapsed = start.elapsed();
    let stats = index.stats();

    let flagged = true_positive + false_positive + resurfaced;
    println!(
        "processed {} tweets in {:.2?} on a {}-tweet sliding window",
        corpus.len(),
        elapsed,
        WINDOW
    );
    println!(
        "index at end: {} live / {} retired ({} awaiting compaction), {} merges",
        stats.live_points, stats.retired_points, stats.retired_pending_purge, stats.merges
    );
    println!();
    println!("flagged as first stories: {flagged}");
    println!(
        "  of which genuinely fresh:      {true_positive} ({:.1}% precision)",
        100.0 * true_positive as f64 / flagged.max(1) as f64
    );
    println!("  in-window duplicates missed:   {false_positive}");
    println!("  resurfaced (original expired): {resurfaced}");
    println!(
        "in-window duplicates correctly suppressed: {false_negative} of {}",
        false_negative + false_positive
    );
    println!("expired-original duplicates still caught by a live echo: {resurfaced_suppressed}");
    println!("fresh tweets that still had a neighbor (shared rare words): {true_negative}");

    // Sanity for the example: detection must be much better than chance,
    // and the window must actually bound residency.
    let dup_suppression = false_negative as f64 / (false_negative + false_positive).max(1) as f64;
    assert!(
        dup_suppression > 0.8,
        "expected >80% of in-window duplicates suppressed, got {:.1}%",
        dup_suppression * 100.0
    );
    assert_eq!(
        stats.retired_points,
        corpus.len() - WINDOW as usize,
        "window watermark must sit exactly WINDOW behind the stream head"
    );
    assert_eq!(stats.live_points + stats.deleted_points, WINDOW as usize);
    assert!(
        resurfaced > 0,
        "an 8k stream over a 2.5k window must see some stories resurface"
    );
    Ok(())
}
