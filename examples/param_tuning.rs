//! Parameter selection with the Section 7 performance model.
//!
//! Given a data sample, a radius, a failure probability, and a memory
//! budget, PLSH enumerates `(k, m)` pairs, keeps those meeting the recall
//! constraint `P'(R, k, m) ≥ 1 − δ` and the memory bound (Eq. 7.4), prices
//! each with `T_Q2·E[#collisions] + T_Q3·E[#unique]`, and picks the
//! cheapest — exactly the paper's Section 7.3 procedure. The chosen pair
//! is then validated end-to-end through the [`plsh::Index`] client.
//!
//! ```text
//! cargo run --release --example param_tuning
//! ```

use plsh::core::model::{MachineProfile, PerformanceModel};
use plsh::core::params::{ParamSelection, SelectionInput};
use plsh::core::rng::SplitMix64;
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, GroundTruth, QuerySet, SyntheticCorpus};
use plsh::{Index, SearchRequest};

fn main() -> plsh::Result<()> {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 30_000,
        vocab_size: 20_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 5,
    });
    let pool = ThreadPool::default();

    // Distance sample (the paper uses 1000 queries x 1000 points).
    let mut rng = SplitMix64::new(1);
    let mut dists = Vec::new();
    for _ in 0..500 {
        let q = corpus.vector(rng.next_below(corpus.len() as u64) as u32);
        for _ in 0..50 {
            let v = corpus.vector(rng.next_below(corpus.len() as u64) as u32);
            dists.push(q.angular_distance(v));
        }
    }

    // Cost weights from the calibrated machine model.
    let model = PerformanceModel::new(MachineProfile::calibrate(&pool, 2.6e9));
    let input = SelectionInput {
        dim: corpus.dim(),
        n: corpus.len(),
        memory_bytes: 256 << 20, // 256 MB budget for the static tables
        radius: 0.9,
        delta: 0.1,
        sample_distances: &dists,
        cost: model.cost_weights(corpus.avg_nnz()),
        k_max: 20,
        seed: 77,
    };
    let selection = ParamSelection::select(&input)?;

    println!("candidates (one per k; m is the smallest meeting P'(R) >= 1-delta):\n");
    println!("| k | m | L | P'(R) | E[#collisions] | E[#unique] | est. cost (cycles) | memory | feasible |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---|");
    for c in &selection.candidates {
        println!(
            "| {} | {} | {} | {:.3} | {:.0} | {:.0} | {:.2e} | {:.0} MB | {} |",
            c.k,
            c.m,
            c.l,
            c.recall_at_radius,
            c.expected_collisions,
            c.expected_unique,
            c.estimated_cost_cycles,
            c.memory_bytes as f64 / (1 << 20) as f64,
            if c.feasible { "yes" } else { "no" }
        );
    }
    let chosen = &selection.chosen;
    println!(
        "\nchosen: k = {}, m = {} (L = {} tables), guaranteed recall at R: {:.1}%",
        chosen.k(),
        chosen.m(),
        chosen.l(),
        chosen.recall_at_radius() * 100.0
    );

    // Validate the choice end-to-end: open an index and measure recall.
    let index = Index::builder(chosen.clone())
        .capacity(corpus.len())
        .manual_merge()
        .build()?;
    index.add_batch(corpus.vectors())?;
    index.merge()?;

    let queries = QuerySet::sample_from_corpus(&corpus, 200, 3);
    let truth = GroundTruth::compute(corpus.vectors(), queries.queries(), 0.9, &pool);
    let resp = index.search(&SearchRequest::batch(queries.queries().to_vec()).with_stats())?;
    let reported: Vec<Vec<u32>> = resp
        .results
        .iter()
        .map(|hits| hits.iter().map(|h| h.index).collect())
        .collect();
    let stats = resp.stats.expect("stats requested");
    println!(
        "measured: recall {:.1}% over {} exact neighbors, {:.3} ms/query, {:.0} candidates/query",
        truth.recall_of(&reported) * 100.0,
        truth.total_neighbors(),
        stats.avg_latency().as_secs_f64() * 1e3,
        stats.avg_unique(),
    );
    assert!(
        truth.recall_of(&reported) >= 0.9,
        "selected parameters must deliver the recall target"
    );
    Ok(())
}
