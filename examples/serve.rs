//! Serving over HTTP: boot the wire surface on an ephemeral port, speak
//! raw HTTP/1.1 at it from a plain `TcpStream` (exactly what `curl`
//! would send), and drain gracefully.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use plsh::workload::{CorpusConfig, SyntheticCorpus};
use plsh::{Index, PlshParams, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One round-trip: write a raw request, read until the server finishes
/// the response (Content-Length framing keeps this simple).
fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"),
    )
}

fn main() -> plsh::Result<()> {
    // A small synthetic tweet corpus and an index over it.
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 2_000,
        vocab_size: 5_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 11,
    });
    let params = PlshParams::builder(corpus.dim())
        .k(8)
        .m(8)
        .radius(0.9)
        .seed(5)
        .build()?;
    let index = Index::builder(params).capacity(4_096).build()?;
    index.add_batch(corpus.vectors())?;

    // Port 0 = ephemeral; the OS picks, `server.addr()` reports.
    let server = index
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind server");
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    // A radius search for the first document, as raw JSON-over-HTTP.
    let doc = &corpus.vectors()[0];
    let pairs: Vec<String> = doc
        .indices()
        .iter()
        .zip(doc.values())
        .map(|(i, v)| format!("[{i},{v}]"))
        .collect();
    let query_body = format!("{{\"queries\": [[{}]], \"top_k\": 3}}", pairs.join(","));
    println!("POST /search → {}", post(addr, "/search", &query_body));

    // Stream in a new document over the wire, then delete it again.
    let ingest_body = format!("{{\"vectors\": [[{}]]}}", pairs.join(","));
    let ingest_resp = post(addr, "/ingest", &ingest_body);
    println!("POST /ingest → {ingest_resp}");
    let new_id = ingest_resp
        .rsplit_once("[")
        .and_then(|(_, tail)| tail.split(']').next())
        .unwrap_or("2000")
        .to_string();
    println!(
        "POST /delete → {}",
        post(addr, "/delete", &format!("{{\"id\": {new_id}}}"))
    );

    // Liveness and telemetry.
    println!("GET /healthz → {}", get(addr, "/healthz"));
    println!("GET /metrics → {}", get(addr, "/metrics"));

    // Protocol robustness: an unknown route answers 404, it doesn't wedge.
    println!("GET /nope → {}", get(addr, "/nope"));

    // Graceful drain: stop accepting, finish queued work, drain the engine.
    let report = server.shutdown();
    println!(
        "\nshutdown: drained={} merge_abandoned={}",
        report.drained, report.merge_abandoned
    );
    Ok(())
}
