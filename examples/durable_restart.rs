//! Durable restart: journal the streaming lifecycle to a directory,
//! crash, and recover in place.
//!
//! Snapshots (`save_restore` example) rewrite the whole index on every
//! save; `persist_to` instead keeps the directory in sync incrementally —
//! a WAL record per insert batch, an immutable segment per sealed
//! generation, a manifest swap per merge — so a firehose node can be
//! durable without ever pausing to serialize its corpus.
//!
//! ```text
//! cargo run --release --example durable_restart
//! ```

use plsh::workload::{CorpusConfig, SyntheticCorpus};
use plsh::{Index, PlshParams};

fn main() -> plsh::Result<()> {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 8_000,
        vocab_size: 10_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 77,
    });
    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(10)
        .radius(0.9)
        .seed(5)
        .build()?;

    let dir = std::env::temp_dir().join(format!("plsh-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A journaled index mid-life: a merged static prefix, sealed
    // generations, an open WAL tail, and a tombstone.
    let index = Index::builder(params.clone())
        .capacity(corpus.len())
        .manual_merge()
        .build()?;
    index.persist_to(&dir)?;
    index.add_batch(&corpus.vectors()[..4_000])?;
    index.merge()?;
    for chunk in corpus.vectors()[4_000..6_000].chunks(500) {
        index.add_batch(chunk)?;
    }
    index.delete(123)?;
    println!(
        "journaled index: {} points, directory {}",
        index.len(),
        dir.display()
    );

    // Crash: the process "dies" with the tail of the stream never sealed
    // into a segment — only the WAL has it.
    drop(index);

    // Restart: recovery replays manifest -> static segment -> generation
    // segments -> WAL tail -> tombstone log, and re-attaches the journal
    // so the recovered index keeps persisting.
    let recovered = Index::recover_from(&dir)?;
    assert_eq!(recovered.len(), 6_000);
    let hits = recovered.query(corpus.vector(57))?;
    assert!(hits.iter().any(|h| h.index == 57), "recovered point found");
    assert!(
        recovered
            .query(corpus.vector(123))?
            .iter()
            .all(|h| h.index != 123),
        "tombstone survived the crash"
    );
    println!(
        "recovered {} points; tombstone for 123 intact",
        recovered.len()
    );

    // The journal is live again: stream more, crash again, recover again.
    recovered.add_batch(&corpus.vectors()[6_000..])?;
    drop(recovered);
    let again = Index::recover_from(&dir)?;
    assert_eq!(again.len(), corpus.len());
    println!("second restart recovered all {} points", again.len());

    drop(again);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
