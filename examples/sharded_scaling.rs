//! Scaling one index across shard-local streaming engines.
//!
//! The same `plsh::Index` API, two builds: a single streaming node, and a
//! sharded build where inserts hash-route into per-shard engines (each
//! with its own ingest queue and background merge) and queries fan out
//! over all shards and merge globally. The answers are bit-identical —
//! the demo checks that live — while ingest, merges, and queries overlap
//! across every shard at once.
//!
//! ```text
//! cargo run --release --example sharded_scaling
//! ```

use std::time::Instant;

use plsh::workload::{CorpusConfig, QuerySet, SyntheticCorpus};
use plsh::{Index, PlshParams, SearchRequest};

fn main() -> plsh::Result<()> {
    const N: usize = 12_000;
    const SHARDS: usize = 4;

    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: N,
        vocab_size: 20_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 41,
    });
    let queries = QuerySet::sample_from_corpus(&corpus, 64, 3);
    let req = SearchRequest::batch(queries.queries().to_vec());
    let knn = SearchRequest::batch(queries.queries().to_vec()).top_k(5);
    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(12)
        .radius(0.9)
        .seed(17)
        .build()?;

    // One streaming node, as before.
    let single = Index::builder(params.clone()).capacity(N).build()?;
    single.add_batch(corpus.vectors())?;
    single.flush()?;

    // The same API across four shard-local engines. `capacity` is per
    // shard (the paper's per-node C); `.auto_shards()` would let the
    // Section-7 performance model pick the count for this machine
    // instead.
    let sharded = Index::builder(params)
        .capacity(N)
        .shards(SHARDS)
        .eta(0.05)
        .build()?;
    println!(
        "sharded index: {} shards, routing by stable hash of the point id",
        sharded.num_shards()
    );

    // Stream the corpus in chunks: each chunk scatters across all shard
    // queues, every shard ingests and merges independently in the
    // background, and queries keep running against per-shard epochs.
    let t0 = Instant::now();
    let mut merges_seen = 0;
    for (i, chunk) in corpus.vectors().chunks(1_000).enumerate() {
        sharded.add_batch(chunk)?;
        let resp = sharded.search(&req)?;
        let stats = sharded.stats();
        merges_seen = merges_seen.max(stats.merges);
        if i % 3 == 0 {
            println!(
                "t={:>7.1?}  routed {:>6}  visible {:>6}  merges {:>2}  query batch -> {} hits",
                t0.elapsed(),
                sharded.len(),
                stats.static_points + stats.delta_points - stats.purged_points,
                stats.merges,
                resp.total_hits(),
            );
        }
    }
    sharded.flush()?; // barrier: every routed point is now query-visible
    println!(
        "ingested {} points across {} shards in {:.2?} ({} background merges so far)",
        sharded.len(),
        sharded.num_shards(),
        t0.elapsed(),
        sharded.stats().merges,
    );

    // Same answers, bit for bit — radius answer *sets* (discovery order
    // differs by segmentation, so they canonicalize sorted) and k-NN
    // rankings (rank order must match too, so no sorting there) — even
    // though the sharded build may still have merges in flight.
    let ranked = |resp: &plsh::SearchResponse| -> Vec<Vec<(u32, u32)>> {
        resp.results
            .iter()
            .map(|hits| {
                hits.iter()
                    .map(|h| (h.index, h.distance.to_bits()))
                    .collect()
            })
            .collect()
    };
    let sets = |resp: &plsh::SearchResponse| -> Vec<Vec<(u32, u32)>> {
        let mut canon = ranked(resp);
        for set in &mut canon {
            set.sort_unstable();
        }
        canon
    };
    assert_eq!(
        sets(&single.search(&req)?),
        sets(&sharded.search(&req)?),
        "radius answer sets must match the single node"
    );
    assert_eq!(
        ranked(&single.search(&knn)?),
        ranked(&sharded.search(&knn)?),
        "k-NN rankings must match the single node, order included"
    );
    println!("radius + k-NN answers bit-identical to the single node");

    // The shard attribution rides along on every hit; pick point 42's own
    // hit (radius answers also surface its near-duplicates).
    let probe = corpus.vector(42).clone();
    let hits = sharded.search(&SearchRequest::query(probe))?;
    let own = hits
        .hits()
        .iter()
        .find(|h| h.index == 42)
        .expect("probe finds itself");
    println!(
        "point 42 lives on shard {} (global id {}, distance {:.4})",
        own.node, own.index, own.distance
    );
    Ok(())
}
