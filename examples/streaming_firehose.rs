//! A multi-node cluster drinking from a firehose (Figure 1 end-to-end).
//!
//! A producer thread streams tweet batches through a bounded channel; the
//! coordinator round-robins them into the current insert window of `M`
//! nodes, nodes auto-merge their delta tables at `η·C`, full windows roll
//! forward, and the oldest window is retired in place once the cluster
//! wraps. Queries run concurrently against the whole cluster throughout.
//!
//! ```text
//! cargo run --release --example streaming_firehose
//! ```

use plsh::cluster::firehose::Firehose;
use plsh::cluster::{Cluster, ClusterConfig};
use plsh::core::{EngineConfig, PlshParams};
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, QuerySet, SyntheticCorpus};

fn main() {
    const NODES: usize = 8;
    const WINDOW: usize = 2; // the paper's M
    const NODE_CAPACITY: usize = 2_500;

    // 1.5x the cluster capacity, so retirement must kick in.
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: NODES * NODE_CAPACITY * 3 / 2,
        vocab_size: 20_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 99,
    });
    let queries = QuerySet::sample_from_corpus(&corpus, 50, 7);

    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(12)
        .radius(0.9)
        .seed(11)
        .build()
        .expect("valid parameters");
    let pool = ThreadPool::default();
    let mut cluster = Cluster::new(
        ClusterConfig::new(
            EngineConfig::new(params, NODE_CAPACITY).with_eta(0.1),
            NODES,
            WINDOW,
        ),
        &pool,
    )
    .expect("valid cluster config");

    // Twitter-style arrival: batches of tweets through a bounded channel.
    let hose = Firehose::start(corpus.vectors().to_vec(), 1_000, 4);
    let start = std::time::Instant::now();
    let mut ingested = 0usize;
    while let Some(batch) = hose.next_batch() {
        ingested += batch.docs.len();
        cluster
            .insert_batch(&batch.docs, &pool)
            .expect("insert path retires old windows as needed");

        // Interleave a query burst every few batches, as a live system
        // would see.
        if batch.seq % 5 == 4 {
            let report = cluster.query_batch(queries.queries(), &pool);
            let stats = cluster.stats();
            println!(
                "t={:>6.2?}  ingested {:>6}  stored {:>6}/{} ({} nodes occupied, window {}, {} retirements)  query batch {:>6.1?} (imbalance {:.2})",
                start.elapsed(),
                ingested,
                stats.total_points,
                stats.total_capacity,
                stats.occupied_nodes,
                stats.active_window,
                stats.retirements,
                report.elapsed,
                report.load_imbalance(),
            );
        }
    }

    let stats = cluster.stats();
    println!("\nfinal state after {} tweets:", ingested);
    println!(
        "  stored {} of {} capacity across {} nodes; {} wholesale retirements",
        stats.total_points, stats.total_capacity, NODES, stats.retirements
    );
    assert!(
        stats.retirements >= 1,
        "streaming 1.5x capacity must have retired at least one window"
    );
    // The newest tweets must be findable; the oldest should be gone.
    let last = corpus.len() - 1;
    let newest_hits = cluster.query(corpus.vector(last as u32), &pool);
    assert!(!newest_hits.is_empty(), "newest tweet must be indexed");
    println!("  newest tweet found on node {}", newest_hits[0].node);
}
