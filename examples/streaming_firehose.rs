//! Querying *while* the firehose streams in (Figure 1 end-to-end).
//!
//! Part 1 — the concurrent single-node path: a paced producer thread
//! pushes tweet batches through a bounded channel, an ingest thread pumps
//! them into a [`plsh::Index`] (hash → seal → background merge at `η·C`),
//! and the main thread keeps answering the same [`SearchRequest`] the
//! whole time. Every answer comes from one pinned epoch — the index never
//! shows a half-merged state — and merge publication is a single pointer
//! swap.
//!
//! Part 2 — the cluster path: the same firehose drives a multi-node
//! coordinator with rolling insert windows; full windows roll forward and
//! the oldest is retired in place once the cluster wraps. The coordinator
//! answers the *same* `SearchRequest` type as the single node.
//!
//! ```text
//! cargo run --release --example streaming_firehose
//! ```

use plsh::cluster::firehose::Firehose;
use plsh::cluster::{Cluster, ClusterConfig};
use plsh::core::EngineConfig;
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, QuerySet, SyntheticCorpus};
use plsh::{Index, PlshParams, SearchRequest};

fn main() -> plsh::Result<()> {
    const NODES: usize = 8;
    const WINDOW: usize = 2; // the paper's M
    const NODE_CAPACITY: usize = 2_500;

    // 1.5x the cluster capacity, so retirement must kick in.
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: NODES * NODE_CAPACITY * 3 / 2,
        vocab_size: 20_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 99,
    });
    let queries = QuerySet::sample_from_corpus(&corpus, 50, 7);
    let query_req = SearchRequest::batch(queries.queries().to_vec()).with_stats();
    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(12)
        .radius(0.9)
        .seed(11)
        .build()?;

    // ---- Part 1: one node, true insert ‖ query ‖ merge overlap. ----
    println!("== single node: concurrent ingest + queries ==");
    let node_points = corpus.len() / 2;
    let index = Index::builder(params.clone())
        .capacity(node_points)
        .eta(0.1)
        .build()?;

    // Twitter-style paced arrival, pumped by a dedicated ingest thread
    // (the pump drives the index's underlying streaming handle).
    let rate = node_points as f64 / 3.0; // drain in ~3 s
    let hose = Firehose::start_paced(corpus.vectors()[..node_points].to_vec(), 1_000, 4, rate);
    let pump = hose.pump_into(
        index
            .backend()
            .expect("single-node index exposes its streaming handle")
            .clone(),
    );

    // Main thread: query continuously against whatever epoch is live.
    let start = std::time::Instant::now();
    let mut batches = 0u64;
    while !pump.is_finished() {
        let resp = index.search(&query_req)?;
        batches += 1;
        if batches % 32 == 1 {
            let info = resp.epoch.expect("single-node responses pin an epoch");
            assert_eq!(
                info.visible_points,
                info.static_points + info.sealed_points,
                "epochs are never half-merged"
            );
            println!(
                "t={:>6.2?}  visible {:>6} (static {:>6} + {} sealed gens)  epoch #{:<4}  \
                 query batch {:>7.1?}  {} matches",
                start.elapsed(),
                info.visible_points,
                info.static_points,
                info.sealed_generations,
                info.generation,
                resp.stats.expect("stats requested").elapsed,
                resp.total_hits(),
            );
        }
    }
    let ingest = pump.join();
    index.flush()?;
    let merge = index.last_merge();
    println!(
        "ingested {} points at {:.0}/s on the ingest thread; {} merges \
         (last: build {:.1} ms off to the side, publish {:.3} ms); {} query batches ran alongside",
        ingest.points,
        ingest.insert_qps(),
        index.stats().merges,
        merge.build.as_secs_f64() * 1e3,
        merge.publish.as_secs_f64() * 1e3,
        batches,
    );
    let probe = corpus.vector((node_points - 1) as u32);
    assert!(
        index
            .query(probe)?
            .iter()
            .any(|h| h.index == (node_points - 1) as u32),
        "newest tweet must be findable"
    );

    // ---- Part 2: the cluster with rolling insert windows. ----
    println!("\n== cluster: rolling windows + retirement ==");
    let pool = ThreadPool::default();
    let cluster = Cluster::new(
        ClusterConfig::new(
            EngineConfig::new(params, NODE_CAPACITY).with_eta(0.1),
            NODES,
            WINDOW,
        ),
        &pool,
    )
    .map_err(plsh::Error::from)?;

    let hose = Firehose::start(corpus.vectors().to_vec(), 1_000, 4);
    let start = std::time::Instant::now();
    let mut ingested = 0usize;
    while let Some(batch) = hose.next_batch() {
        ingested += batch.docs.len();
        cluster
            .insert_batch(&batch.docs, &pool)
            .map_err(plsh::Error::from)?;
        // Interleave a query burst every few batches, as a live system
        // would see. The coordinator answers the exact same request type
        // as the single node.
        if batch.seq % 5 == 4 {
            let resp = cluster.search(&query_req, &pool)?;
            let stats = cluster.stats();
            println!(
                "t={:>6.2?}  ingested {:>6}  stored {:>6}/{} ({} nodes occupied, window {}, {} retirements)  query batch {:>6.1?}  {} matches",
                start.elapsed(),
                ingested,
                stats.total_points,
                stats.total_capacity,
                stats.occupied_nodes,
                stats.active_window,
                stats.retirements,
                resp.stats.expect("stats requested").elapsed,
                resp.total_hits(),
            );
        }
    }

    let stats = cluster.stats();
    println!("\nfinal state after {} tweets:", ingested);
    println!(
        "  stored {} of {} capacity across {} nodes; {} wholesale retirements",
        stats.total_points, stats.total_capacity, NODES, stats.retirements
    );
    assert!(
        stats.retirements >= 1,
        "streaming 1.5x capacity must have retired at least one window"
    );
    // The newest tweets must be findable; the oldest should be gone.
    let last = corpus.len() - 1;
    let newest = cluster.search(
        &SearchRequest::query(corpus.vector(last as u32).clone()),
        &pool,
    )?;
    assert!(!newest.hits().is_empty(), "newest tweet must be indexed");
    println!("  newest tweet found on node {}", newest.hits()[0].node);
    Ok(())
}
