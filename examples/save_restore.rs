//! Snapshot persistence: save a live index to bytes and restore it.
//!
//! Warm restarts matter for an in-memory index. A snapshot stores the
//! index's *inputs* (parameters, rows, static/delta split, tombstones);
//! hashes and tables are rebuilt deterministically from the stored seed on
//! load, so the restored index answers identically.
//!
//! ```text
//! cargo run --release --example save_restore
//! ```

use plsh::workload::{CorpusConfig, SyntheticCorpus};
use plsh::{Index, PlshParams};

fn main() -> plsh::Result<()> {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 5_000,
        vocab_size: 8_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 31,
    });
    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(10)
        .radius(0.9)
        .seed(8)
        .build()?;

    // An index mid-life: most data static, a little in the delta, one
    // delete.
    let index = Index::builder(params)
        .capacity(corpus.len())
        .manual_merge()
        .build()?;
    index.add_batch(&corpus.vectors()[..4_500])?;
    index.merge()?;
    index.add_batch(&corpus.vectors()[4_500..])?;
    index.delete(42)?;
    let stats = index.stats();
    println!(
        "live index: {} points ({} static, {} delta, {} deleted)",
        index.len(),
        stats.static_points,
        stats.delta_points,
        stats.deleted_points
    );

    // Save (here to memory; any Write works — a file, a socket, ...).
    let mut bytes = Vec::new();
    index.save_to(&mut bytes)?;
    println!(
        "snapshot: {} bytes ({:.1} bytes/point)",
        bytes.len(),
        bytes.len() as f64 / index.len() as f64
    );

    // Restore and verify equivalence on a query sample.
    let restored = Index::restore_from(&mut bytes.as_slice())?;
    assert_eq!(restored.len(), index.len());
    assert_eq!(restored.stats().static_points, stats.static_points);
    let mut checked = 0;
    for id in (0..corpus.len() as u32).step_by(97) {
        let q = corpus.vector(id);
        let mut a: Vec<u32> = index.query(q)?.iter().map(|h| h.index).collect();
        let mut b: Vec<u32> = restored.query(q)?.iter().map(|h| h.index).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "answers diverged for probe {id}");
        checked += 1;
    }
    println!("restored index matches the original on {checked} probe queries");
    Ok(())
}
