//! Snapshot persistence: save a live node to bytes and restore it.
//!
//! Warm restarts matter for an in-memory index. A snapshot stores the
//! engine's *inputs* (parameters, rows, static/delta split, tombstones);
//! hashes and tables are rebuilt deterministically from the stored seed on
//! load, so the restored node answers identically.
//!
//! ```text
//! cargo run --release --example save_restore
//! ```

use plsh::core::{Engine, EngineConfig, PlshParams};
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, SyntheticCorpus};

fn main() {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 5_000,
        vocab_size: 8_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 31,
    });
    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(10)
        .radius(0.9)
        .seed(8)
        .build()
        .expect("valid parameters");
    let pool = ThreadPool::default();

    // A node mid-life: most data static, a little in the delta, one delete.
    let engine = Engine::new(
        EngineConfig::new(params, corpus.len()).manual_merge(),
        &pool,
    )
    .expect("valid config");
    engine.insert_batch(&corpus.vectors()[..4_500], &pool).unwrap();
    engine.merge_delta(&pool);
    engine.insert_batch(&corpus.vectors()[4_500..], &pool).unwrap();
    engine.delete(42);
    println!(
        "live engine: {} points ({} static, {} delta, {} deleted)",
        engine.len(),
        engine.static_len(),
        engine.delta_len(),
        engine.stats().deleted_points
    );

    // Save (here to memory; any Write works — a file, a socket, ...).
    let mut bytes = Vec::new();
    engine.save_to(&mut bytes).expect("serialization succeeds");
    println!(
        "snapshot: {} bytes ({:.1} bytes/point)",
        bytes.len(),
        bytes.len() as f64 / engine.len() as f64
    );

    // Restore and verify equivalence on a query sample.
    let restored = Engine::load_from(&mut bytes.as_slice(), &pool).expect("valid snapshot");
    assert_eq!(restored.len(), engine.len());
    assert_eq!(restored.static_len(), engine.static_len());
    let mut checked = 0;
    for id in (0..corpus.len() as u32).step_by(97) {
        let q = corpus.vector(id);
        let mut a: Vec<u32> = engine.query(q).iter().map(|h| h.index).collect();
        let mut b: Vec<u32> = restored.query(q).iter().map(|h| h.index).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "answers diverged for probe {id}");
        checked += 1;
    }
    println!("restored engine matches the original on {checked} probe queries");
}
