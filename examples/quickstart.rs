//! Quickstart: index a handful of documents through the full text pipeline
//! and run similarity queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plsh::core::{Engine, EngineConfig, PlshParams};
use plsh::parallel::ThreadPool;
use plsh::text::{CorpusBuilder, Tokenizer};

fn main() {
    let docs = [
        "breaking storm hits the coast tonight with heavy rain",
        "storm hits coast tonight heavy rain expected",
        "new phone launch amazes critics with battery life",
        "critics amazed by new phone battery life at launch",
        "local team wins championship after dramatic overtime",
        "recipe for the perfect sourdough bread at home",
        "sourdough bread recipe perfect for beginners at home",
        "stock markets rally as inflation numbers surprise",
    ];

    // 1. Two-pass text pipeline: scan builds vocabulary + IDF, then freeze.
    let mut builder = CorpusBuilder::new(Tokenizer::default());
    for d in &docs {
        builder.add_document(d);
    }
    let vectorizer = builder.finish();
    println!(
        "vocabulary: {} terms over {} documents",
        vectorizer.dim(),
        docs.len()
    );

    // 2. Configure PLSH. Tiny corpora want small k (few hash bits); real
    //    deployments use the parameter-selection module (see the
    //    param_tuning example).
    // Radius 1.1 rather than the paper's tweet-vs-tweet 0.9: short free-text
    // queries against longer documents sit at larger angles even when they
    // share every query term.
    let params = PlshParams::builder(vectorizer.dim())
        .k(6)
        .m(8)
        .radius(1.1)
        .delta(0.1)
        .seed(42)
        .build()
        .expect("valid parameters");
    let pool = ThreadPool::default();
    let engine =
        Engine::new(EngineConfig::new(params, 1024), &pool).expect("valid engine config");

    // 3. Index every document (inserts buffer in the delta tables; merge
    //    moves them into the read-optimized static tables).
    for d in &docs {
        let v = vectorizer.vectorize(d).expect("in-vocabulary document");
        engine.insert(v, &pool).expect("capacity is ample");
    }
    engine.merge_delta(&pool);
    println!(
        "indexed {} documents ({} static, {} delta)\n",
        engine.len(),
        engine.static_len(),
        engine.delta_len()
    );

    // 4. Query with free text.
    for query in [
        "storm and heavy rain on the coast",
        "sourdough bread recipe",
        "phone with a great battery",
    ] {
        let qv = vectorizer.vectorize(query).expect("in-vocabulary query");
        let mut hits = engine.query(&qv);
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        println!("query: {query:?}");
        if hits.is_empty() {
            println!("  (no documents within the radius)");
        }
        for h in hits {
            println!("  {:.3}  {:?}", h.distance, docs[h.index as usize]);
        }
        println!();
    }
}
