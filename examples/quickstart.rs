//! Quickstart: index a handful of documents through the one-stop
//! [`plsh::Index`] client and run free-text similarity queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plsh::text::{CorpusBuilder, Tokenizer};
use plsh::{Index, PlshParams, SearchRequest};

fn main() -> plsh::Result<()> {
    let docs = [
        "breaking storm hits the coast tonight with heavy rain",
        "storm hits coast tonight heavy rain expected",
        "new phone launch amazes critics with battery life",
        "critics amazed by new phone battery life at launch",
        "local team wins championship after dramatic overtime",
        "recipe for the perfect sourdough bread at home",
        "sourdough bread recipe perfect for beginners at home",
        "stock markets rally as inflation numbers surprise",
    ];

    // 1. Two-pass text pipeline: scan builds vocabulary + IDF, then freeze.
    let mut builder = CorpusBuilder::new(Tokenizer::default());
    for d in &docs {
        builder.add_document(d);
    }
    let vectorizer = builder.finish();
    println!(
        "vocabulary: {} terms over {} documents",
        vectorizer.dim(),
        docs.len()
    );

    // 2. Configure PLSH and open the index. The client owns its thread
    //    pool and wires the text pipeline in — no manual plumbing. Tiny
    //    corpora want small k (few hash bits); real deployments use the
    //    parameter-selection module (see the param_tuning example).
    // Radius 1.1 rather than the paper's tweet-vs-tweet 0.9: short free-text
    // queries against longer documents sit at larger angles even when they
    // share every query term.
    let params = PlshParams::builder(vectorizer.dim())
        .k(6)
        .m(8)
        .radius(1.1)
        .delta(0.1)
        .seed(42)
        .build()?;
    let index = Index::builder(params)
        .capacity(1024)
        .vectorizer(vectorizer)
        .build()?;

    // 3. Index every document (inserts land in delta tables and are
    //    query-visible immediately; merging into the read-optimized
    //    static tables happens behind the scenes).
    for d in &docs {
        index.add_text(d)?;
    }
    index.merge()?;
    let stats = index.stats();
    println!(
        "indexed {} documents ({} static, {} delta)\n",
        index.len(),
        stats.static_points,
        stats.delta_points
    );

    // 4. Query with free text.
    for query in [
        "storm and heavy rain on the coast",
        "sourdough bread recipe",
        "phone with a great battery",
    ] {
        let mut hits = index.search_text(query)?.into_hits();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        println!("query: {query:?}");
        if hits.is_empty() {
            println!("  (no documents within the radius)");
        }
        for h in hits {
            println!("  {:.3}  {:?}", h.distance, docs[h.index as usize]);
        }
        println!();
    }

    // 5. The same door answers k-NN — a request field, not a new method.
    let resp = index
        .search(&SearchRequest::query(index.vectorize("inflation rally markets")?).top_k(1))?;
    println!(
        "closest single doc to 'inflation rally markets': {:?}",
        docs[resp.hits()[0].index as usize]
    );
    Ok(())
}
