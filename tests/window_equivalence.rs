//! Sliding-window equivalence and crash properties.
//!
//! Two guarantees pin down retire-by-age semantics:
//!
//! 1. **Twin equivalence** — a windowed engine must answer bit-identically
//!    to a windowless twin that manually `delete`s every id the window
//!    retired, under *arbitrary* interleavings of inserts, merges, and
//!    explicit deletes (proptest-driven). Retirement is a range tombstone,
//!    not a different search path, so no interleaving may tell them apart.
//!
//! 2. **Window-edge recovery** — cut the power after *any* persistence
//!    operation of a windowed engine's life (mid-WAL append, between a
//!    retire-log record and its manifest swap, halfway through a window
//!    compaction) and recovery must land on a consistent window edge:
//!    `static_base ≤ retired_below ≤ id-space end`, resident rows an
//!    exact contiguous slice of the ingested order, and answers
//!    bit-identical to a from-scratch build over that slice.
//!
//! Power cuts are injected through `plsh::core::persist::fail`, which is
//! process-global; the arming test serializes on [`FAIL_GUARD`].

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use proptest::prelude::*;

use plsh::core::engine::{Engine, EngineConfig, WindowSpec};
use plsh::core::persist::{self, fail};
use plsh::core::rng::SplitMix64;
use plsh::core::{PlshParams, SparseVector};
use plsh::parallel::ThreadPool;

/// Serializes tests that arm the process-global fail injector.
static FAIL_GUARD: Mutex<()> = Mutex::new(());

const DIM: u32 = 32;
const CAPACITY: usize = 400;

fn params(seed: u64) -> PlshParams {
    PlshParams::builder(DIM)
        .k(6)
        .m(6)
        .radius(0.9)
        .seed(seed)
        .build()
        .unwrap()
}

fn vectors(n: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = rng.next_below(DIM as u64) as u32;
            let b = (a + 1 + rng.next_below(DIM as u64 - 1) as u32) % DIM;
            SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
        })
        .collect()
}

/// Canonical answer form: per query, sorted `(id, distance-bits)`.
fn engine_answers(e: &Engine, qs: &[SparseVector]) -> Vec<Vec<(u32, u32)>> {
    qs.iter()
        .map(|q| {
            let mut hits: Vec<(u32, u32)> = e
                .query(q)
                .iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect();
            hits.sort_unstable();
            hits
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Twin equivalence under arbitrary interleavings.
// ---------------------------------------------------------------------------

/// One step of an interleaved engine life. `Insert` carries a batch size,
/// `Delete` an offset into the currently-live id range (applied to both
/// twins), `Merge` triggers window compaction on the windowed engine and
/// a plain tombstone purge on the twin.
#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Merge,
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1usize..=12).prop_map(Op::Insert),
        2 => Just(Op::Merge),
        2 => (0usize..32).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the interleaving of inserts, merges, and explicit
    /// deletes, a windowed engine and a windowless twin that deletes
    /// exactly the retired ids answer every query bit-identically —
    /// after every single step, not just at the end.
    #[test]
    fn windowed_engine_is_answer_identical_to_manual_delete_twin(
        seed in 0u64..1_000,
        window in 8u32..64,
        ops in proptest::collection::vec(op_strategy(), 4..20),
    ) {
        let pool = ThreadPool::new(1);
        let total_docs: usize = ops
            .iter()
            .map(|op| if let Op::Insert(n) = op { *n } else { 0 })
            .sum();
        // Without merges the resident span equals the ingest total, which
        // the capacity must cover for both twins.
        prop_assume!(total_docs < CAPACITY);
        let vs = vectors(total_docs.max(1), seed ^ 0x9E37);
        let queries = vectors(12, seed.wrapping_add(7));

        let windowed = Engine::new(
            EngineConfig::new(params(11), CAPACITY)
                .manual_merge()
                .with_window(WindowSpec::Docs(window)),
            &pool,
        )
        .unwrap();
        let twin = Engine::new(
            EngineConfig::new(params(11), CAPACITY).manual_merge(),
            &pool,
        )
        .unwrap();

        let mut next = 0usize; // next vector to ingest
        let mut synced = 0u32; // twin deletions issued below this id
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(n) => {
                    let batch = &vs[next..next + n];
                    windowed.insert_batch(batch, &pool).unwrap();
                    twin.insert_batch(batch, &pool).unwrap();
                    next += n;
                }
                Op::Merge => {
                    windowed.merge_delta(&pool);
                    twin.merge_delta(&pool);
                }
                Op::Delete(off) => {
                    let live_from = windowed.retired_below();
                    let live = next as u32 - live_from;
                    if live > 0 {
                        let id = live_from + (off as u32 % live);
                        windowed.delete(id);
                        twin.delete(id);
                    }
                }
            }
            // Mirror the window's automatic retirement onto the twin.
            let cut = windowed.retired_below();
            prop_assert!(cut >= synced, "watermark moved backwards");
            for id in synced..cut {
                twin.delete(id);
            }
            synced = cut;

            prop_assert_eq!(
                engine_answers(&windowed, &queries),
                engine_answers(&twin, &queries),
                "answers diverged after step {} ({:?})", step, op
            );
        }

        // Final invariants on the windowed side.
        let info = windowed.epoch_info();
        prop_assert!(info.static_base <= info.retired_below);
        prop_assert!(info.retired_below as usize <= info.static_base as usize + info.visible_points);
        if next as u32 > window {
            prop_assert_eq!(windowed.retired_below(), next as u32 - window);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Kill-at-any-op window-edge recovery.
// ---------------------------------------------------------------------------

const WINDOW: u32 = 40;
const SCRIPT_DELETES: [u32; 3] = [45, 62, 71];

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("plsh-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Builds the windowed engine and writes its (empty) durable baseline
/// *before* the injector arms: the crash window under test is the life
/// of a windowed journaling index, not its very first `persist_to`.
fn setup_windowed(dir: &Path, pool: &ThreadPool) -> Engine {
    let engine = Engine::new(
        EngineConfig::new(params(3), CAPACITY)
            .manual_merge()
            .with_seal_min_points(8)
            .with_window(WindowSpec::Docs(WINDOW)),
        pool,
    )
    .unwrap();
    engine.persist_to(dir).unwrap();
    engine
}

/// Scripted windowed life whose every persistence-op boundary is a crash
/// point: WAL appends interleaved with retire-log advances, seals,
/// explicit deletes, and two merges — the second a window compaction
/// that rebases the static structure (manifest swap with a non-zero
/// `static_base`, physical reclamation of the expired prefix).
fn run_windowed_script(engine: &Engine, vs: &[SparseVector], pool: &ThreadPool) {
    engine.insert_batch(&vs[..12], pool).unwrap();
    engine.insert_batch(&vs[12..30], pool).unwrap();
    engine.seal();
    engine.insert_batch(&vs[30..48], pool).unwrap();
    engine.merge_delta(pool);
    engine.delete(SCRIPT_DELETES[0]);
    engine.insert_batch(&vs[48..66], pool).unwrap();
    engine.delete(SCRIPT_DELETES[1]);
    engine.seal();
    // Small chunks stay in the open generation: WAL + retire-log traffic
    // with the watermark advancing past already-durable rows.
    for chunk in vs[66..94].chunks(7) {
        engine.insert_batch(chunk, pool).unwrap();
    }
    engine.delete(SCRIPT_DELETES[2]);
    // Window compaction: everything below the watermark is reclaimed and
    // the static structure rebases to a non-zero `static_base`.
    engine.merge_delta(pool);
    engine.insert_batch(&vs[94..104], pool).unwrap();
}

/// Windowless from-scratch reference over a recovered resident slice:
/// bulk insert, merge, replay the watermark as an explicit range
/// tombstone, then the recovered per-id tombstones. Ids translate by
/// `base`.
fn scratch_answers(
    rows: &[SparseVector],
    base: u32,
    retired_below: u32,
    tombstones: &[u32],
    queries: &[SparseVector],
    pool: &ThreadPool,
) -> Vec<Vec<(u32, u32)>> {
    let engine = Engine::new(EngineConfig::new(params(3), CAPACITY).manual_merge(), pool).unwrap();
    if !rows.is_empty() {
        engine.insert_batch(rows, pool).unwrap();
    }
    engine.merge_delta(pool);
    let _ = engine.retire_to(retired_below - base);
    for &id in tombstones {
        engine.delete(id - base);
    }
    engine_answers(&engine, queries)
        .into_iter()
        .map(|hits| hits.into_iter().map(|(id, d)| (id + base, d)).collect())
        .collect()
}

#[test]
fn windowed_recovery_survives_a_power_cut_after_every_operation() {
    let _g = FAIL_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ThreadPool::new(1);
    let vs = vectors(104, 23);
    let queries = vectors(10, 97);

    // Dry run with an unlimited budget counts the script's op total.
    let dir = tempdir("window-crash-count");
    let engine = setup_windowed(&dir, &pool);
    fail::arm(i64::MAX);
    run_windowed_script(&engine, &vs, &pool);
    drop(engine);
    fail::disarm();
    let total_ops = fail::ops_used();
    let _ = fs::remove_dir_all(&dir);
    assert!(
        total_ops > 40,
        "script must span many persistence ops to be interesting, got {total_ops}"
    );

    for k in 0..=total_ops {
        let dir = tempdir("window-crash-k");
        let engine = setup_windowed(&dir, &pool);
        fail::arm(k as i64);
        run_windowed_script(&engine, &vs, &pool);
        drop(engine);
        fail::disarm();

        // Read-only inspection first: the durable state must sit on a
        // consistent window edge whatever op the cut landed on.
        let st = persist::load_state(&dir)
            .unwrap_or_else(|e| panic!("cut after op {k}: recovery refused: {e}"));
        let base = st.static_base();
        let rb = st.retired_below();
        let end = base as usize + st.total();
        assert!(
            base <= rb,
            "cut after op {k}: static_base {base} ran past the watermark {rb}"
        );
        assert!(
            rb as usize <= end,
            "cut after op {k}: watermark {rb} past the id space end {end}"
        );
        let rows = st.all_rows();
        assert_eq!(
            rows,
            &vs[base as usize..end],
            "cut after op {k}: resident rows are not the contiguous ingest slice [{base}, {end})"
        );
        let tombstones = st.tombstones();
        for id in &tombstones {
            assert!(
                SCRIPT_DELETES.contains(id),
                "cut after op {k}: phantom tombstone {id}"
            );
        }

        // Full recovery preserves the window spec and lands on the
        // effective edge: the durable watermark, or further if the
        // retire log lagged the recovered doc count (the live window
        // re-derives `end - WINDOW` during replay — never backwards).
        let expected_rb = rb.max((end as u32).saturating_sub(WINDOW));
        let back = Engine::recover_from(&dir, &pool)
            .unwrap_or_else(|e| panic!("cut after op {k}: recovery failed: {e}"));
        assert_eq!(
            back.retired_below(),
            expected_rb,
            "cut after op {k}: rebuilt engine lost the watermark"
        );
        let info = back.epoch_info();
        assert!(info.static_base <= info.retired_below);
        assert_eq!(
            engine_answers(&back, &queries),
            scratch_answers(&rows, base, expected_rb, &tombstones, &queries, &pool),
            "cut after op {k}: recovered answers diverge from a from-scratch build"
        );

        // The recovered engine keeps sliding: more inserts advance the
        // watermark monotonically from the recovered edge.
        let more = end + 20;
        back.insert_batch(&vectors(more, 23)[end..more], &pool)
            .unwrap();
        assert_eq!(
            back.retired_below(),
            (more as u32).saturating_sub(WINDOW).max(expected_rb)
        );
        drop(back);
        let _ = fs::remove_dir_all(&dir);
    }
}
