//! End-to-end HTTP surface tests against the `plsh` facade: a sharded
//! `Index` behind `Index::serve`, exercised over real sockets.
//!
//! Three guarantees pinned down here that the crate-level protocol suite
//! can't reach:
//!
//! 1. Answers over the wire are bit-identical to in-process
//!    `Index::search` — the JSON codec loses nothing.
//! 2. A fault armed at `query.shard` via `PLSH_FAULTS` (the operator
//!    surface, exercised in a child process so the env var goes through
//!    the real lazy-init path) maps to a clean HTTP 500, and the server
//!    keeps serving afterwards.
//! 3. A degraded engine (persistent WAL failure) turns `/healthz` into a
//!    503 with `"degraded": true` and rejects ingest with 503, while
//!    searches keep answering.

use plsh::core::fault::{self, FaultKind, FaultSpec};
use plsh::workload::{CorpusConfig, SyntheticCorpus};
use plsh::{Index, PlshParams, SearchRequest, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;

/// Faults are process-global; every test that arms them holds this.
static FAULT_GUARD: Mutex<()> = Mutex::new(());

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(CorpusConfig {
        num_docs: 400,
        vocab_size: 800,
        mean_words: 6.0,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 23,
    })
}

fn params(dim: u32) -> PlshParams {
    PlshParams::builder(dim)
        .k(6)
        .m(8)
        .radius(0.9)
        .seed(9)
        .build()
        .unwrap()
}

fn send_raw(server: &Server, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn post(server: &Server, path: &str, body: &str) -> String {
    send_raw(
        server,
        format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn get(server: &Server, path: &str) -> String {
    send_raw(
        server,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Raw term-weight pairs of a corpus document, as wire JSON. The server
/// is asked to `normalize` so the query it builds is the same unit
/// vector `SparseVector::unit` produces in-process.
fn query_json(corpus: &SyntheticCorpus, i: usize) -> String {
    let doc = &corpus.vectors()[i];
    let pairs: Vec<String> = doc
        .indices()
        .iter()
        .zip(doc.values())
        .map(|(d, w)| format!("[{d},{w}]"))
        .collect();
    format!("[{}]", pairs.join(","))
}

#[test]
fn wire_answers_match_in_process_search() {
    let corpus = corpus();
    let index = Index::builder(params(corpus.dim()))
        .capacity(2_048)
        .shards(2)
        .build()
        .unwrap();
    index.add_batch(corpus.vectors()).unwrap();
    index.flush().unwrap();
    let server = index.serve("127.0.0.1:0").expect("bind");

    for i in [0usize, 7, 42, 199] {
        let body = format!(
            "{{\"queries\": [{}], \"top_k\": 5, \"normalize\": true}}",
            query_json(&corpus, i)
        );
        let resp = post(&server, "/search", &body);
        assert_eq!(status_of(&resp), 200, "{resp}");

        let expect = index
            .search(&SearchRequest::query(corpus.vectors()[i].clone()).top_k(5))
            .unwrap();
        // The wire hit list must reproduce node/index/distance exactly —
        // f32 distances round-trip bit-for-bit through the JSON codec.
        let wire_body = body_of(&resp);
        for hit in expect.hits() {
            let needle = format!(
                "{{\"distance\":{},\"index\":{},\"node\":{}}}",
                plsh::server::Json::Num(hit.distance as f64),
                hit.index,
                hit.node,
            );
            assert!(
                wire_body.contains(&needle),
                "hit {needle} missing from wire response {wire_body}"
            );
        }
    }
    server.shutdown();
}

/// The child half of `plsh_faults_env_maps_shard_panic_to_500`: runs in
/// a subprocess with `PLSH_FAULTS=query.shard=panic:times=1` set, so the
/// fault arms through the same lazy env-init an operator would use.
#[test]
#[ignore = "child process of plsh_faults_env_maps_shard_panic_to_500"]
fn child_faulted_shard_search() {
    if std::env::var("PLSH_SERVER_HTTP_CHILD").is_err() {
        return; // ran directly (e.g. --include-ignored): nothing to prove
    }
    let corpus = corpus();
    let index = Index::builder(params(corpus.dim()))
        .capacity(2_048)
        .shards(2)
        .build()
        .unwrap();
    index.add_batch(corpus.vectors()).unwrap();
    index.flush().unwrap();
    let server = index.serve("127.0.0.1:0").expect("bind");

    let body = format!(
        "{{\"queries\": [{}], \"top_k\": 3, \"normalize\": true}}",
        query_json(&corpus, 0)
    );
    // First search trips the armed panic in a shard fan-out task; the
    // handler thread must contain it and answer 500.
    let resp = post(&server, "/search", &body);
    assert_eq!(status_of(&resp), 500, "{resp}");
    assert!(resp.contains("internal panic"), "{resp}");
    assert!(fault::fired(fault::QUERY_SHARD) >= 1, "fault never fired");

    // The fault was times=1: the server survives and answers again.
    let resp = post(&server, "/search", &body);
    assert_eq!(status_of(&resp), 200, "{resp}");
    // A query-path panic is not persistent damage: still healthy.
    let health = get(&server, "/healthz");
    assert_eq!(status_of(&health), 200, "{health}");
    server.shutdown();
}

#[test]
fn plsh_faults_env_maps_shard_panic_to_500() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let exe = std::env::current_exe().expect("own test binary");
    let output = Command::new(exe)
        .args(["child_faulted_shard_search", "--exact", "--ignored"])
        .env("PLSH_SERVER_HTTP_CHILD", "1")
        .env("PLSH_FAULTS", "query.shard=panic:times=1")
        .output()
        .expect("spawn child test process");
    assert!(
        output.status.success(),
        "child failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn degraded_backend_turns_healthz_503_and_rejects_ingest() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm_all();
    fault::reset_counters();
    let dir = std::env::temp_dir().join(format!("plsh_server_http_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let corpus = corpus();
    let index = Index::builder(params(corpus.dim()))
        .capacity(2_048)
        .build()
        .unwrap();
    index.persist_to(&dir).unwrap();
    index.add_batch(&corpus.vectors()[..200]).unwrap();
    let server = index.serve("127.0.0.1:0").expect("bind");
    assert_eq!(status_of(&get(&server, "/healthz")), 200);

    // Unbounded WAL write failures exhaust the retry budget: the next
    // ingest must degrade the engine instead of losing rows silently.
    fault::arm(fault::WAL_APPEND, FaultSpec::new(FaultKind::Err));
    let ingest = format!("{{\"vectors\": [{}]}}", query_json(&corpus, 300));
    let resp = post(&server, "/ingest", &ingest);
    assert_eq!(status_of(&resp), 503, "{resp}");
    fault::disarm_all();

    // Degraded is sticky: healthz flips to 503 and says why…
    let health = get(&server, "/healthz");
    assert_eq!(status_of(&health), 503, "{health}");
    assert!(health.contains("\"degraded\":true"), "{health}");
    // …further writes stay rejected…
    let resp = post(&server, "/ingest", &ingest);
    assert_eq!(status_of(&resp), 503, "{resp}");
    // …but reads keep answering off the pinned epoch.
    let body = format!(
        "{{\"queries\": [{}], \"top_k\": 3, \"normalize\": true}}",
        query_json(&corpus, 0)
    );
    assert_eq!(status_of(&post(&server, "/search", &body)), 200);

    // Heal (faults are gone) and the surface recovers end to end.
    assert!(index.heal(), "heal should succeed once faults are disarmed");
    assert_eq!(status_of(&get(&server, "/healthz")), 200);
    assert_eq!(status_of(&post(&server, "/ingest", &ingest)), 200);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
