//! Integration: PLSH accuracy against exact brute-force ground truth.
//!
//! LSH is randomized, but two properties are deterministic and testable:
//! * soundness — every reported neighbor really is within the radius
//!   (candidates are distance-checked), and
//! * exact-duplicate completeness — a query identical to an indexed point
//!   hashes identically, so it collides in every table and is always found.
//!
//! Recall over all near neighbors is probabilistic; on the seeded workload
//! below it must exceed the configured `1 − δ` guarantee by a margin, and
//! the run is fully reproducible.

use plsh::core::{Engine, EngineConfig, PlshParams};
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, GroundTruth, QuerySet, SyntheticCorpus};

fn fixture() -> (SyntheticCorpus, QuerySet, Engine, ThreadPool) {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 10_000,
        vocab_size: 8_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.25,
        seed: 42,
    });
    let queries = QuerySet::sample_from_corpus(&corpus, 150, 9);
    let params = PlshParams::builder(corpus.dim())
        .k(10)
        .m(14)
        .radius(0.9)
        .delta(0.1)
        .seed(3)
        .build()
        .unwrap();
    let pool = ThreadPool::new(2);
    let engine = Engine::new(
        EngineConfig::new(params, corpus.len()).manual_merge(),
        &pool,
    )
    .unwrap();
    engine.insert_batch(corpus.vectors(), &pool).unwrap();
    engine.merge_delta(&pool);
    (corpus, queries, engine, pool)
}

#[test]
fn reported_neighbors_are_sound() {
    let (corpus, queries, engine, pool) = fixture();
    let (answers, _) = engine.query_batch(queries.queries(), &pool);
    for (q, hits) in queries.queries().iter().zip(&answers) {
        for h in hits {
            let exact = q.angular_distance(corpus.vector(h.index));
            assert!(
                exact <= 0.9 + 1e-5,
                "reported {} at {} (> R)",
                h.index,
                exact
            );
            assert!((exact - h.distance).abs() < 1e-4, "distance must be exact");
        }
    }
}

#[test]
fn exact_duplicates_are_always_found() {
    let (_, queries, engine, _pool) = fixture();
    for (i, q) in queries.queries().iter().enumerate() {
        let src = queries.source_id(i).unwrap();
        let hits = engine.query(q);
        assert!(
            hits.iter().any(|h| h.index == src && h.distance < 1e-3),
            "query {i} failed to find its own source {src}"
        );
    }
}

#[test]
fn recall_exceeds_the_configured_guarantee() {
    let (corpus, queries, engine, pool) = fixture();
    let truth = GroundTruth::compute(corpus.vectors(), queries.queries(), 0.9, &pool);
    assert!(
        truth.total_neighbors() > queries.len(),
        "workload must contain non-trivial neighbor structure"
    );
    let (answers, _) = engine.query_batch(queries.queries(), &pool);
    let reported: Vec<Vec<u32>> = answers
        .iter()
        .map(|hits| hits.iter().map(|h| h.index).collect())
        .collect();
    let recall = truth.recall_of(&reported);
    // δ = 0.1 bounds per-neighbor misses at the radius; empirical recall is
    // higher because most neighbors are well inside R (the paper measures
    // 92% in the same setting).
    assert!(recall >= 0.9, "recall {recall} below the 1 - delta target");
}

#[test]
fn recall_is_reproducible_across_runs() {
    let (_, queries, engine, pool) = fixture();
    let (a, _) = engine.query_batch(queries.queries(), &pool);
    let (_, _, engine2, pool2) = fixture();
    let (b, _) = engine2.query_batch(queries.queries(), &pool2);
    for (x, y) in a.iter().zip(&b) {
        let mut xs: Vec<u32> = x.iter().map(|h| h.index).collect();
        let mut ys: Vec<u32> = y.iter().map(|h| h.index).collect();
        xs.sort_unstable();
        ys.sort_unstable();
        assert_eq!(xs, ys, "same seeds must give identical answers");
    }
}
