//! Integration: the streaming path (delta tables, merges, deletions,
//! retirement) must never change query answers relative to a bulk build.

use plsh::core::{DeltaLayout, Engine, EngineConfig, PlshParams, SparseVector};
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, SyntheticCorpus};

fn params(dim: u32) -> PlshParams {
    PlshParams::builder(dim)
        .k(8)
        .m(10)
        .radius(0.9)
        .delta(0.1)
        .seed(17)
        .build()
        .unwrap()
}

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(CorpusConfig {
        num_docs: 4_000,
        vocab_size: 5_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.2,
        seed: 1,
    })
}

fn answers(engine: &Engine, queries: &[SparseVector]) -> Vec<Vec<u32>> {
    queries
        .iter()
        .map(|q| {
            let mut ids: Vec<u32> = engine.query(q).iter().map(|h| h.index).collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

#[test]
fn bulk_chunked_and_unmerged_builds_agree() {
    let c = corpus();
    let pool = ThreadPool::new(2);
    let queries: Vec<SparseVector> = (0..60u32).map(|i| c.vector(i * 37).clone()).collect();

    // Bulk: one insert + one merge.
    let bulk = Engine::new(
        EngineConfig::new(params(c.dim()), c.len()).manual_merge(),
        &pool,
    )
    .unwrap();
    bulk.insert_batch(c.vectors(), &pool).unwrap();
    bulk.merge_delta(&pool);

    // Chunked with auto-merge at eta = 5%.
    let chunked = Engine::new(
        EngineConfig::new(params(c.dim()), c.len()).with_eta(0.05),
        &pool,
    )
    .unwrap();
    for chunk in c.vectors().chunks(333) {
        chunked.insert_batch(chunk, &pool).unwrap();
    }
    assert!(chunked.stats().merges >= 2, "auto-merges must have fired");

    // Never merged: everything answered from the delta tables.
    let unmerged = Engine::new(
        EngineConfig::new(params(c.dim()), c.len()).manual_merge(),
        &pool,
    )
    .unwrap();
    unmerged.insert_batch(c.vectors(), &pool).unwrap();
    assert_eq!(unmerged.static_len(), 0);

    // Sparse-layout delta as a fourth configuration.
    let sparse_delta = Engine::new(
        EngineConfig::new(params(c.dim()), c.len())
            .manual_merge()
            .with_delta_layout(DeltaLayout::Sparse),
        &pool,
    )
    .unwrap();
    sparse_delta.insert_batch(c.vectors(), &pool).unwrap();

    let reference = answers(&bulk, &queries);
    assert_eq!(answers(&chunked, &queries), reference);
    assert_eq!(answers(&unmerged, &queries), reference);
    assert_eq!(answers(&sparse_delta, &queries), reference);
}

#[test]
fn deletions_survive_merges() {
    let c = corpus();
    let pool = ThreadPool::new(1);
    let engine = Engine::new(
        EngineConfig::new(params(c.dim()), c.len()).manual_merge(),
        &pool,
    )
    .unwrap();
    engine.insert_batch(&c.vectors()[..2000], &pool).unwrap();
    engine.merge_delta(&pool);

    // Delete a static point and a delta point.
    engine
        .insert_batch(&c.vectors()[2000..2100], &pool)
        .unwrap();
    let static_victim = 123u32;
    let delta_victim = 2050u32;
    assert!(engine.delete(static_victim));
    assert!(engine.delete(delta_victim));

    let q_static = c.vector(static_victim).clone();
    let q_delta = c.vector(delta_victim).clone();
    assert!(!engine
        .query(&q_static)
        .iter()
        .any(|h| h.index == static_victim));
    assert!(!engine
        .query(&q_delta)
        .iter()
        .any(|h| h.index == delta_victim));

    // A merge must not resurrect the tombstoned points.
    engine.merge_delta(&pool);
    assert!(!engine
        .query(&q_static)
        .iter()
        .any(|h| h.index == static_victim));
    assert!(!engine
        .query(&q_delta)
        .iter()
        .any(|h| h.index == delta_victim));
    assert_eq!(engine.stats().deleted_points, 2);
}

#[test]
fn query_during_partial_fill_sees_exactly_the_inserted_prefix() {
    let c = corpus();
    let pool = ThreadPool::new(1);
    let engine = Engine::new(
        EngineConfig::new(params(c.dim()), c.len()).manual_merge(),
        &pool,
    )
    .unwrap();
    let step = 500;
    for (chunk_idx, chunk) in c.vectors().chunks(step).enumerate().take(4) {
        engine.insert_batch(chunk, &pool).unwrap();
        let visible = (chunk_idx + 1) * step;
        // A point beyond the inserted prefix can never be reported.
        for probe in [0u32, (visible - 1) as u32] {
            let hits = engine.query(c.vector(probe));
            assert!(hits.iter().all(|h| (h.index as usize) < visible));
            assert!(
                hits.iter().any(|h| h.index == probe),
                "prefix point findable"
            );
        }
    }
}

#[test]
fn capacity_retirement_cycle_is_clean() {
    let c = corpus();
    let pool = ThreadPool::new(1);
    let cap = 1000usize;
    let engine = Engine::new(EngineConfig::new(params(c.dim()), cap).with_eta(0.2), &pool).unwrap();
    engine.insert_batch(&c.vectors()[..cap], &pool).unwrap();
    assert_eq!(engine.remaining_capacity(), 0);
    assert!(engine.insert(c.vector(0).clone(), &pool).is_err());

    // Node-level retirement (what the cluster window does) and refill.
    engine.clear();
    engine
        .insert_batch(&c.vectors()[cap..2 * cap], &pool)
        .unwrap();
    assert_eq!(engine.len(), cap);
    let probe = c.vector((cap + 5) as u32);
    assert!(engine.query(probe).iter().any(|h| h.index == 5));
    // Old points are gone even though their vectors resemble new ids.
    let old = c.vector(0);
    for h in engine.query(old) {
        let exact = old.angular_distance(c.vector(cap as u32 + h.index));
        assert!(exact <= 0.9 + 1e-5, "hits refer to the new generation only");
    }
}
