//! Runtime fault-tolerance properties: the process *survives* injected
//! I/O errors, worker panics, and stalls — transient faults are absorbed
//! invisibly (retry, supervised restart), persistent faults land in an
//! explicit degraded read-only mode with queries still answering, and
//! after the fault heals the answers are bit-identical to an unfaulted
//! twin fed the same accepted operations.
//!
//! Faults are injected through the named failpoints in
//! `plsh::core::fault`. The registry is process-global, so every test
//! here serializes on [`FAULT_GUARD`]; each test runs under a watchdog so
//! a regression that wedges a barrier fails fast instead of hanging CI.

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;

use plsh::core::engine::EngineConfig;
use plsh::core::fault::{self, FaultKind, FaultSpec};
use plsh::core::rng::SplitMix64;
use plsh::core::streaming::StreamingEngine;
use plsh::core::{PlshError, PlshParams, SparseVector};
use plsh::parallel::ThreadPool;
use plsh::{SearchRequest, ShardedIndex};

/// Serializes the tests that arm the process-global fault registry.
static FAULT_GUARD: Mutex<()> = Mutex::new(());

const DIM: u32 = 32;

fn params(seed: u64) -> PlshParams {
    PlshParams::builder(DIM)
        .k(6)
        .m(6)
        .radius(0.9)
        .seed(seed)
        .build()
        .unwrap()
}

fn vectors(n: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = rng.next_below(DIM as u64) as u32;
            let b = (a + 1 + rng.next_below(DIM as u64 - 1) as u32) % DIM;
            SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
        })
        .collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("plsh-fault-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Canonical answer form: per query, sorted `(id, distance-bits)` — the
/// bit-identical comparison used across all equivalence suites.
fn answers(engine: &StreamingEngine, qs: &[SparseVector]) -> Vec<Vec<(u32, u32)>> {
    qs.iter()
        .map(|q| {
            let mut hits: Vec<(u32, u32)> = engine
                .query(q)
                .into_iter()
                .map(|n| (n.index, n.distance.to_bits()))
                .collect();
            hits.sort_unstable();
            hits
        })
        .collect()
}

/// Runs `body` on a helper thread and panics if it has not finished
/// within `secs` — a wedged flush/merge barrier must fail the test, not
/// hang the suite.
fn with_watchdog<F>(secs: u64, body: F)
where
    F: FnOnce() + Send + 'static,
{
    use std::sync::mpsc::RecvTimeoutError;
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        // Ok: clean finish. Disconnected: the body panicked — join to
        // re-raise the real assertion failure.
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("watchdog: fault-tolerance test hung for {secs}s")
        }
    }
}

#[test]
fn transient_wal_faults_are_absorbed_by_retry() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm_all();
    fault::reset_counters();
    with_watchdog(60, || {
        let dir = tempdir("transient");
        let engine =
            StreamingEngine::new(EngineConfig::new(params(11), 4_000), ThreadPool::new(1)).unwrap();
        engine.persist_to(&dir).unwrap();
        let twin =
            StreamingEngine::new(EngineConfig::new(params(11), 4_000), ThreadPool::new(1)).unwrap();

        // Two injected EIOs fit well inside the 4-retry budget: the
        // engine must absorb them without degrading or losing a row.
        fault::arm(fault::WAL_APPEND, FaultSpec::new(FaultKind::Err).times(2));
        fault::arm(fault::WAL_FSYNC, FaultSpec::new(FaultKind::Err).times(1));
        let vs = vectors(300, 7);
        for chunk in vs.chunks(32) {
            engine.insert_batch(chunk).unwrap();
            twin.insert_batch(chunk).unwrap();
        }
        assert!(fault::fired(fault::WAL_APPEND) >= 1, "the fault fired");
        assert!(!engine.engine().is_degraded(), "transient faults heal");
        assert!(engine.health().persist_retries >= 1, "retries are counted");
        fault::disarm_all();

        engine.flush();
        twin.flush();
        assert_eq!(answers(&engine, &vs), answers(&twin, &vs));

        // And the journal the retries wrote is replayable: a recovered
        // engine answers identically too.
        drop(engine);
        let recovered = StreamingEngine::recover_from(&dir, ThreadPool::new(1)).unwrap();
        assert_eq!(answers(&recovered, &vs), answers(&twin, &vs));
        let _ = fs::remove_dir_all(&dir);
    });
}

#[test]
fn persistent_wal_failure_degrades_read_only_then_heals() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm_all();
    with_watchdog(60, || {
        let dir = tempdir("degrade");
        let engine =
            StreamingEngine::new(EngineConfig::new(params(13), 4_000), ThreadPool::new(1)).unwrap();
        engine.persist_to(&dir).unwrap();
        let twin =
            StreamingEngine::new(EngineConfig::new(params(13), 4_000), ThreadPool::new(1)).unwrap();

        let vs = vectors(240, 9);
        let mut accepted: Vec<SparseVector> = Vec::new();
        for chunk in vs.chunks(24).take(5) {
            engine.insert_batch(chunk).unwrap();
            twin.insert_batch(chunk).unwrap();
            accepted.extend_from_slice(chunk);
        }

        // Unlimited EIOs exhaust the retry budget: the write must come
        // back as a typed Degraded error *before* mutating memory.
        fault::arm(fault::WAL_APPEND, FaultSpec::new(FaultKind::Err));
        let failed = &vs[120..144];
        match engine.insert_batch(failed) {
            Err(PlshError::Degraded(_)) => {}
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert!(engine.engine().is_degraded());
        assert!(engine.health().degraded);
        assert_eq!(engine.len(), accepted.len(), "rejected batch not applied");

        // Reads keep answering off the pinned epoch while degraded.
        assert_eq!(
            answers(&engine, &accepted[..10]),
            answers(&twin, &accepted[..10])
        );
        // Writes stay rejected — degraded mode is sticky, not flapping.
        assert!(matches!(
            engine.insert_batch(failed),
            Err(PlshError::Degraded(_))
        ));
        assert!(matches!(
            engine.engine().try_delete(0),
            Err(PlshError::Degraded(_))
        ));

        // Exact-prefix durability: what the directory holds right now
        // recovers to exactly the accepted rows.
        let recovered = StreamingEngine::recover_from(&dir, ThreadPool::new(1)).unwrap();
        assert_eq!(recovered.len(), accepted.len());
        assert_eq!(
            answers(&recovered, &accepted),
            answers(&twin, &accepted),
            "recovered prefix answers like the twin over the same rows"
        );
        drop(recovered);

        // heal() re-syncs through a fresh baseline + manifest swap; while
        // *that* path still fails it must refuse to clear the flag.
        fault::arm(fault::MANIFEST_SWAP, FaultSpec::new(FaultKind::Err));
        assert!(!engine.heal(), "healing against a still-broken disk fails");
        assert!(engine.engine().is_degraded());

        // Disk comes back: heal, re-apply the failed batch, finish the
        // schedule on both engines — answers must converge bit-identically.
        fault::disarm_all();
        assert!(engine.heal());
        assert!(!engine.engine().is_degraded());
        assert!(!engine.health().degraded);
        engine.insert_batch(failed).unwrap();
        twin.insert_batch(failed).unwrap();
        for chunk in vs[144..].chunks(24) {
            engine.insert_batch(chunk).unwrap();
            twin.insert_batch(chunk).unwrap();
        }
        engine.flush();
        twin.flush();
        assert_eq!(answers(&engine, &vs), answers(&twin, &vs));

        // The resynced journal recovers the full corpus.
        drop(engine);
        let recovered = StreamingEngine::recover_from(&dir, ThreadPool::new(1)).unwrap();
        assert_eq!(answers(&recovered, &vs), answers(&twin, &vs));
        let _ = fs::remove_dir_all(&dir);
    });
}

#[test]
fn merge_worker_panics_are_supervised_and_restarted() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm_all();
    with_watchdog(60, || {
        let engine = StreamingEngine::new(
            EngineConfig::new(params(17), 4_000).manual_merge(),
            ThreadPool::new(2),
        )
        .unwrap();
        let vs = vectors(400, 21);
        for chunk in vs.chunks(50) {
            engine.insert_batch(chunk).unwrap();
        }
        engine.seal();

        // Two panics, then success: the supervisor's 3-restart budget
        // must carry the merge through.
        fault::arm(
            fault::MERGE_BUILD,
            FaultSpec::new(FaultKind::Panic).times(2),
        );
        assert!(engine.merge_in_background());
        engine.wait_for_merge();
        fault::disarm_all();

        let health = engine.health();
        let merge = health
            .workers
            .iter()
            .find(|w| w.name == "merge")
            .expect("merge worker reported");
        assert!(merge.alive, "supervisor restarted the merge worker");
        assert_eq!(merge.restarts, 2, "both panics counted");
        assert!(
            merge
                .last_panic
                .as_deref()
                .unwrap_or("")
                .contains("merge.build"),
            "panic message captured: {:?}",
            merge.last_panic
        );
        assert_eq!(
            engine.engine().delta_len(),
            0,
            "the retried merge actually folded the deltas"
        );
        // Answers survived the supervised restarts.
        let twin =
            StreamingEngine::new(EngineConfig::new(params(17), 4_000), ThreadPool::new(1)).unwrap();
        twin.insert_batch(&vs).unwrap();
        twin.flush();
        assert_eq!(answers(&engine, &vs[..40]), answers(&twin, &vs[..40]));
    });
}

#[test]
fn shutdown_drains_and_joins_with_deadline() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm_all();
    with_watchdog(60, || {
        let engine =
            StreamingEngine::new(EngineConfig::new(params(19), 2_000), ThreadPool::new(2)).unwrap();
        engine.insert_batch(&vectors(300, 33)).unwrap();
        engine.merge_in_background();
        let report = engine.shutdown(Duration::from_secs(20));
        assert!(report.drained, "open generation sealed");
        assert!(!report.merge_abandoned, "merge joined within the deadline");
    });
}

#[test]
fn stalled_shard_yields_partial_flagged_response() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm_all();
    with_watchdog(60, || {
        let index = ShardedIndex::builder(EngineConfig::new(params(23), 2_000))
            .shards(3)
            .threads(2)
            .build()
            .unwrap();
        let vs = vectors(240, 41);
        index.insert_batch(&vs).unwrap();
        index.flush().unwrap();

        // One shard stalls well past the deadline; the fan-out must
        // return the other shards' answers and name the missing one.
        fault::arm(
            fault::QUERY_SHARD,
            FaultSpec::new(FaultKind::Delay(Duration::from_millis(500))).times(1),
        );
        let req =
            SearchRequest::batch(vs[..8].to_vec()).with_shard_deadline(Duration::from_millis(80));
        let resp = index.search(&req).unwrap();
        fault::disarm_all();
        assert_eq!(resp.timed_out_shards.len(), 1, "exactly one shard stalled");

        // Without a deadline the same request waits everything out and
        // reports a complete answer.
        let full = index
            .search(&SearchRequest::batch(vs[..8].to_vec()))
            .unwrap();
        assert!(full.timed_out_shards.is_empty());
        for (partial, complete) in resp.results.iter().zip(&full.results) {
            assert!(
                partial.len() <= complete.len(),
                "partial answers are a subset"
            );
        }
    });
}

#[test]
fn chaos_smoke_under_env_or_default_mix() {
    let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    // When CI arms PLSH_FAULTS the lazy env parse has already seeded the
    // registry on some earlier passage; re-arm a known transient mix on
    // top so this smoke exercises ingest + query + heal under fire
    // deterministically in either environment.
    fault::disarm_all();
    fault::reset_counters();
    with_watchdog(120, || {
        fault::arm(
            fault::WAL_APPEND,
            FaultSpec::new(FaultKind::Err).probability(0.2),
        );
        fault::arm(
            fault::MERGE_BUILD,
            FaultSpec::new(FaultKind::Panic).times(1),
        );
        fault::arm(
            fault::INGEST_BATCH,
            FaultSpec::new(FaultKind::Delay(Duration::from_millis(1))).probability(0.2),
        );
        let dir = tempdir("chaos-smoke");
        let engine =
            StreamingEngine::new(EngineConfig::new(params(29), 8_000), ThreadPool::new(2)).unwrap();
        engine.persist_to(&dir).unwrap();
        let vs = vectors(600, 55);
        let mut accepted: Vec<SparseVector> = Vec::new();
        for chunk in vs.chunks(30) {
            match engine.insert_batch(chunk) {
                Ok(_) => accepted.extend_from_slice(chunk),
                Err(PlshError::Degraded(_)) => {
                    // Probabilistic EIOs exhausted a retry budget: queries
                    // must still answer (no panic, no hang), then healing
                    // needs calm disk.
                    let _ = engine.query(&chunk[0]);
                    fault::disarm(fault::WAL_APPEND);
                    assert!(engine.heal(), "heal with the fault lifted");
                    engine.insert_batch(chunk).unwrap();
                    accepted.extend_from_slice(chunk);
                    fault::arm(
                        fault::WAL_APPEND,
                        FaultSpec::new(FaultKind::Err).probability(0.2),
                    );
                }
                Err(other) => panic!("unexpected ingest error: {other:?}"),
            }
            let _ = engine.query(&chunk[0]);
        }
        fault::disarm_all();
        if engine.engine().is_degraded() {
            assert!(engine.heal());
        }
        engine.flush();
        assert_eq!(engine.len(), accepted.len());

        let twin =
            StreamingEngine::new(EngineConfig::new(params(29), 8_000), ThreadPool::new(1)).unwrap();
        twin.insert_batch(&accepted).unwrap();
        twin.flush();
        assert_eq!(
            answers(&engine, &vs[..40]),
            answers(&twin, &vs[..40]),
            "post-heal answers bit-identical to the unfaulted twin"
        );
        drop(engine);
        let recovered = StreamingEngine::recover_from(&dir, ThreadPool::new(1)).unwrap();
        assert_eq!(answers(&recovered, &vs[..40]), answers(&twin, &vs[..40]));
        let _ = fs::remove_dir_all(&dir);
    });
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of 1..5 vectors.
    Insert(Vec<Vec<(u32, f32)>>),
    /// Tombstone the i-th accepted point (mod current count).
    Delete(usize),
    /// Force-seal the open generation.
    Seal,
    /// Fold sealed generations (supervised, on this thread's engine).
    Merge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pair = (0..DIM, 1u32..100).prop_map(|(d, v)| (d, v as f32 / 10.0));
    let vec_strategy = proptest::collection::vec(pair, 1..4);
    let batch_strategy = proptest::collection::vec(vec_strategy, 1..5);
    prop_oneof![
        5 => batch_strategy.prop_map(Op::Insert),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Delete(i.index(1000))),
        1 => Just(Op::Seal),
        1 => Just(Op::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Any interleaving of inserts / deletes / seals / merges under a
    /// bounded transient-fault storm (WAL EIOs, fsync EIOs, tombstone
    /// EIOs, segment EIOs, one merge panic) must, after the storm lifts,
    /// answer bit-identically to an unfaulted twin fed the same accepted
    /// operations — and the journal written through all the retries must
    /// recover to those same answers.
    #[test]
    fn faulted_interleavings_converge_to_the_unfaulted_twin(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let _g = FAULT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        fault::disarm_all();
        let dir = tempdir("chaos-prop");
        let engine = StreamingEngine::new(
            EngineConfig::new(params(37), 4_000).manual_merge(),
            ThreadPool::new(1),
        )
        .unwrap();
        engine.persist_to(&dir).unwrap();
        let twin = StreamingEngine::new(
            EngineConfig::new(params(37), 4_000).manual_merge(),
            ThreadPool::new(1),
        )
        .unwrap();

        // Every count is inside a retry/supervision budget: the storm is
        // rough but survivable, so no op may be refused.
        fault::arm(fault::WAL_APPEND, FaultSpec::new(FaultKind::Err).times(3));
        fault::arm(fault::WAL_FSYNC, FaultSpec::new(FaultKind::Err).after(2).times(2));
        fault::arm(fault::TOMB_APPEND, FaultSpec::new(FaultKind::Err).times(2));
        fault::arm(fault::SEAL_SEGMENT, FaultSpec::new(FaultKind::Err).times(1));
        fault::arm(fault::STATIC_PREPARE, FaultSpec::new(FaultKind::Err).times(1));
        fault::arm(fault::MANIFEST_SWAP, FaultSpec::new(FaultKind::Err).times(1));
        fault::arm(fault::MERGE_BUILD, FaultSpec::new(FaultKind::Panic).times(1));

        let mut inserted: Vec<SparseVector> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(rows) => {
                    let vs: Vec<SparseVector> = rows
                        .iter()
                        .map(|pairs| SparseVector::unit(pairs.clone()).unwrap())
                        .collect();
                    engine.insert_batch(&vs).unwrap();
                    twin.insert_batch(&vs).unwrap();
                    inserted.extend(vs);
                }
                Op::Delete(i) => {
                    if !inserted.is_empty() {
                        let id = (*i % inserted.len()) as u32;
                        let a = engine.engine().try_delete(id).unwrap();
                        let b = twin.engine().try_delete(id).unwrap();
                        assert_eq!(a, b, "delete outcome diverged on id {id}");
                    }
                }
                Op::Seal => {
                    engine.seal();
                    twin.seal();
                }
                Op::Merge => {
                    engine.merge_now();
                    twin.merge_now();
                }
            }
        }
        fault::disarm_all();
        prop_assert!(!engine.engine().is_degraded(), "bounded storm never degrades");
        engine.flush();
        twin.flush();
        let qs: Vec<SparseVector> = inserted.iter().take(30).cloned().collect();
        prop_assert_eq!(answers(&engine, &qs), answers(&twin, &qs));

        drop(engine);
        let recovered = StreamingEngine::recover_from(&dir, ThreadPool::new(1)).unwrap();
        prop_assert_eq!(answers(&recovered, &qs), answers(&twin, &qs));
        let _ = fs::remove_dir_all(&dir);
    }
}
