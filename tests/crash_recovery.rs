//! Crash-recovery property: cut the power after *any* persistence
//! operation — mid-WAL-append, between a segment rename and its WAL
//! retirement, halfway through a manifest swap — and recovery must come
//! back with an exact prefix of the ingested rows, a subset of the issued
//! tombstones, and answers bit-identical to a from-scratch build over
//! that prefix. Exercised exhaustively for a single engine (every cut
//! point `k` in the scripted run) and sampled for a sharded index, plus
//! hand-made corruption: torn WAL tails at arbitrary byte offsets, a
//! deleted generation segment, and a trashed manifest.
//!
//! Power cuts are injected through `plsh::core::persist::fail`, which
//! tears the k-th low-level persistence op and freezes the directory
//! after it. The injector is process-global, so every arming test here
//! serializes on [`FAIL_GUARD`].

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use plsh::core::engine::{Engine, EngineConfig};
use plsh::core::persist::{self, fail};
use plsh::core::rng::SplitMix64;
use plsh::core::{PlshParams, SparseVector};
use plsh::parallel::ThreadPool;
use plsh::{SearchRequest, ShardedIndex};

/// Serializes the tests that arm the process-global fail injector.
static FAIL_GUARD: Mutex<()> = Mutex::new(());

const DIM: u32 = 32;
const CAPACITY: usize = 400;

fn params(seed: u64) -> PlshParams {
    PlshParams::builder(DIM)
        .k(6)
        .m(6)
        .radius(0.9)
        .seed(seed)
        .build()
        .unwrap()
}

fn vectors(n: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let a = rng.next_below(DIM as u64) as u32;
            let b = (a + 1 + rng.next_below(DIM as u64 - 1) as u32) % DIM;
            SparseVector::unit(vec![(a, 1.0), (b, rng.next_f64() as f32 + 0.1)]).unwrap()
        })
        .collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("plsh-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Canonical answer form: per query, sorted `(id, distance-bits)`.
fn engine_answers(e: &Engine, qs: &[SparseVector]) -> Vec<Vec<(u32, u32)>> {
    qs.iter()
        .map(|q| {
            let mut hits: Vec<(u32, u32)> = e
                .query(q)
                .iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect();
            hits.sort_unstable();
            hits
        })
        .collect()
}

/// From-scratch reference over a recovered prefix: bulk insert, merge,
/// then the recovered tombstones. Recovery promises bit-identical
/// answers to this build, whatever segment/WAL/manifest state the cut
/// left behind.
fn scratch_engine(rows: &[SparseVector], tombstones: &[u32], pool: &ThreadPool) -> Engine {
    let engine = Engine::new(EngineConfig::new(params(3), CAPACITY).manual_merge(), pool).unwrap();
    if !rows.is_empty() {
        engine.insert_batch(rows, pool).unwrap();
    }
    engine.merge_delta(pool);
    for &id in tombstones {
        engine.delete(id);
    }
    engine
}

/// Scripted engine life: a baseline, open-generation WAL traffic, seals,
/// deletes, and two merges (static segment + manifest swap + generation
/// retirement). Every persistence-op boundary inside this script is a
/// crash point the k-loop below must survive.
const SCRIPT_DELETES: [u32; 3] = [3, 30, 55];

/// Builds the engine and writes its (empty) durable baseline. Runs
/// before the injector arms: the crash window under test is the life of
/// a journaling index, not its very first `persist_to` (a cut there
/// leaves no manifest, which is the clean refuse-to-recover case covered
/// by [`a_trashed_manifest_is_a_clean_error_not_a_panic`]).
fn setup_engine(dir: &Path, pool: &ThreadPool) -> Engine {
    let engine = Engine::new(
        EngineConfig::new(params(3), CAPACITY)
            .manual_merge()
            .with_seal_min_points(8),
        pool,
    )
    .unwrap();
    engine.persist_to(dir).unwrap();
    engine
}

/// Scripted mutations, every persistence-op boundary of which is a crash
/// point: open-generation WAL traffic, seals, deletes, and two merges
/// (static segment + manifest swap + generation retirement).
fn run_script(engine: &Engine, vs: &[SparseVector], pool: &ThreadPool) {
    engine.insert_batch(&vs[..10], pool).unwrap();
    engine.insert_batch(&vs[10..25], pool).unwrap();
    engine.delete(SCRIPT_DELETES[0]);
    engine.seal();
    engine.insert_batch(&vs[25..40], pool).unwrap();
    engine.merge_delta(pool);
    engine.delete(SCRIPT_DELETES[1]);
    engine.insert_batch(&vs[40..60], pool).unwrap();
    engine.seal();
    // Small chunks stay in the open generation: WAL-only at the cut.
    for chunk in vs[60..74].chunks(7) {
        engine.insert_batch(chunk, pool).unwrap();
    }
    engine.delete(SCRIPT_DELETES[2]);
    engine.merge_delta(pool);
    engine.insert_batch(&vs[74..80], pool).unwrap();
}

#[test]
fn recovery_survives_a_power_cut_after_every_operation() {
    let _g = FAIL_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ThreadPool::new(1);
    let vs = vectors(80, 17);

    // Dry run with an unlimited budget counts the script's op total.
    let dir = tempdir("crash-count");
    let engine = setup_engine(&dir, &pool);
    fail::arm(i64::MAX);
    run_script(&engine, &vs, &pool);
    drop(engine);
    fail::disarm();
    let total = fail::ops_used();
    let _ = fs::remove_dir_all(&dir);
    assert!(
        total > 40,
        "script must span many persistence ops to be interesting, got {total}"
    );

    for k in 0..=total {
        let dir = tempdir("crash-k");
        let engine = setup_engine(&dir, &pool);
        fail::arm(k as i64);
        run_script(&engine, &vs, &pool);
        drop(engine);
        fail::disarm();

        // Inspect the frozen directory read-only first: the durable rows
        // must be an exact prefix of the ingested order, the durable
        // tombstones a subset of the issued ones.
        let st = persist::load_state(&dir)
            .unwrap_or_else(|e| panic!("cut after op {k}: recovery refused: {e}"));
        let rows = st.all_rows();
        assert_eq!(
            rows,
            &vs[..st.total()],
            "cut after op {k}: recovered rows are not an ingest prefix"
        );
        let tombstones = st.tombstones();
        for id in &tombstones {
            assert!(
                SCRIPT_DELETES.contains(id),
                "cut after op {k}: phantom tombstone {id}"
            );
        }

        // Full recovery answers like a from-scratch build over the prefix.
        let back = Engine::recover_from(&dir, &pool)
            .unwrap_or_else(|e| panic!("cut after op {k}: recovery failed: {e}"));
        assert_eq!(back.len(), rows.len());
        let scratch = scratch_engine(&rows, &tombstones, &pool);
        assert_eq!(
            engine_answers(&back, &vs),
            engine_answers(&scratch, &vs),
            "cut after op {k}: recovered answers diverge from a from-scratch build"
        );
        drop(back);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Locates the single file under `dir/data-0` matching `prefix`/`suffix`.
fn find_data_file(dir: &Path, prefix: &str, suffix: &str) -> PathBuf {
    let mut hits: Vec<PathBuf> = fs::read_dir(dir.join("data-0"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with(prefix) && name.ends_with(suffix)
        })
        .collect();
    hits.sort();
    assert!(!hits.is_empty(), "no {prefix}*{suffix} under {dir:?}");
    hits.remove(0)
}

#[test]
fn a_wal_truncated_at_any_byte_recovers_the_whole_records() {
    let dir = tempdir("crash-trunc");
    let pool = ThreadPool::new(1);
    let vs = vectors(40, 5);
    let engine = Engine::new(
        EngineConfig::new(params(3), CAPACITY)
            .manual_merge()
            .with_seal_min_points(64),
        &pool,
    )
    .unwrap();
    engine.persist_to(&dir).unwrap();
    for chunk in vs.chunks(8) {
        engine.insert_batch(chunk, &pool).unwrap();
    }
    drop(engine);

    let wal = find_data_file(&dir, "wal-", ".log");
    let bytes = fs::read(&wal).unwrap();
    let mut lengths = Vec::new();
    for cut in (0..=bytes.len()).rev().step_by(13) {
        fs::write(&wal, &bytes[..cut]).unwrap();
        let st = persist::load_state(&dir).unwrap();
        // Whole 8-row records survive; the torn tail is dropped silently.
        assert_eq!(
            st.total() % 8,
            0,
            "cut at byte {cut} recovered a torn record"
        );
        assert!(st.total() <= vs.len());
        assert_eq!(st.all_rows(), &vs[..st.total()]);
        let back = persist::rebuild_engine(&st, None, &pool).unwrap();
        assert_eq!(back.len(), st.total());
        lengths.push(st.total());
    }
    assert_eq!(
        lengths.first(),
        Some(&vs.len()),
        "uncut WAL recovers everything"
    );
    assert_eq!(lengths.last(), Some(&0), "empty WAL recovers nothing");
    assert!(
        lengths.windows(2).all(|w| w[0] >= w[1]),
        "shorter WALs can only recover less: {lengths:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_missing_generation_segment_truncates_to_the_gap() {
    let dir = tempdir("crash-gap");
    let pool = ThreadPool::new(1);
    let vs = vectors(45, 7);
    let engine = Engine::new(
        EngineConfig::new(params(3), CAPACITY)
            .manual_merge()
            .with_seal_min_points(1),
        &pool,
    )
    .unwrap();
    engine.persist_to(&dir).unwrap();
    for chunk in vs[..30].chunks(10) {
        engine.insert_batch(chunk, &pool).unwrap();
        engine.seal();
    }
    drop(engine);

    // Externally destroy the middle segment: ids 10..20 are gone, so the
    // recoverable prefix ends at the gap — the intact gen-20 segment
    // behind it is an orphan and must not resurrect out-of-order rows.
    fs::remove_file(dir.join("data-0").join("gen-10.seg")).unwrap();
    let st = persist::load_state(&dir).unwrap();
    assert_eq!(st.total(), 10, "recovery must stop at the id-space gap");
    assert_eq!(st.all_rows(), &vs[..10]);

    // Recovery keeps journaling: the orphan is GC'd on attach, and new
    // rows take over the freed id range cleanly.
    let back = Engine::recover_from(&dir, &pool).unwrap();
    assert_eq!(back.len(), 10);
    back.insert_batch(&vs[30..45], &pool).unwrap();
    back.seal();
    drop(back);
    let again = Engine::recover_from(&dir, &pool).unwrap();
    assert_eq!(again.len(), 25);
    let expect: Vec<SparseVector> = vs[..10].iter().chain(&vs[30..45]).cloned().collect();
    let scratch = scratch_engine(&expect, &[], &pool);
    assert_eq!(
        engine_answers(&again, &vs),
        engine_answers(&scratch, &vs),
        "post-gap journaling diverged from a from-scratch build"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_trashed_manifest_is_a_clean_error_not_a_panic() {
    let dir = tempdir("crash-manifest");
    let pool = ThreadPool::new(1);
    let vs = vectors(20, 9);
    let engine = Engine::new(EngineConfig::new(params(3), CAPACITY).manual_merge(), &pool).unwrap();
    engine.persist_to(&dir).unwrap();
    engine.insert_batch(&vs, &pool).unwrap();
    drop(engine);

    let manifest = dir.join("MANIFEST");
    let good = fs::read(&manifest).unwrap();
    // Bit-flipped checksum, truncation, wrong magic, empty file: all must
    // refuse recovery with an error, never a panic or a silent zero-row
    // "success".
    let mut flipped = good.clone();
    *flipped.last_mut().unwrap() ^= 0xff;
    let cases: Vec<Vec<u8>> = vec![
        flipped,
        good[..good.len() / 2].to_vec(),
        b"JUNKJUNKJUNK".to_vec(),
        Vec::new(),
    ];
    for (i, bad) in cases.iter().enumerate() {
        fs::write(&manifest, bad).unwrap();
        assert!(
            persist::load_state(&dir).is_err(),
            "corrupt manifest case {i} was accepted"
        );
        assert!(Engine::recover_from(&dir, &pool).is_err());
    }
    // The pristine manifest still recovers everything.
    fs::write(&manifest, &good).unwrap();
    assert_eq!(Engine::recover_from(&dir, &pool).unwrap().len(), vs.len());
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Sharded: the cut hits three engines at once, each at a different point
// in its own WAL/segment/manifest lifecycle. Recovery truncates to the
// longest globally contiguous id prefix. Sampled rather than exhaustive —
// ingest workers interleave persistence ops nondeterministically, so k
// indexes "some interleaving", and every sampled cut must still satisfy
// the prefix/tombstone/answer contract.
// ---------------------------------------------------------------------

const SHARDS: usize = 3;
const SHARDED_DELETES: [u32; 3] = [5, 40, 77];

/// Builds the sharded index and its durable baseline (cluster manifest +
/// three empty shard directories) before the injector arms — same crash
/// model as the single-engine loop.
fn setup_sharded(dir: &Path) -> ShardedIndex {
    let index = ShardedIndex::builder(
        EngineConfig::new(params(3), CAPACITY)
            .manual_merge()
            .with_seal_min_points(8),
    )
    .shards(SHARDS)
    .threads(2)
    .build()
    .unwrap();
    index.persist_to(dir).unwrap();
    index
}

fn run_sharded_script(index: &ShardedIndex, vs: &[SparseVector]) {
    for chunk in vs[..60].chunks(16) {
        index.insert_batch(chunk).unwrap();
    }
    let _ = index.delete(SHARDED_DELETES[0]);
    index.flush().unwrap();
    index.merge_all_in_background();
    index.quiesce().unwrap();
    let _ = index.delete(SHARDED_DELETES[1]);
    for chunk in vs[60..120].chunks(9) {
        index.insert_batch(chunk).unwrap();
    }
    let _ = index.delete(SHARDED_DELETES[2]);
    index.flush().unwrap();
}

fn sharded_answers(index: &ShardedIndex, qs: &[SparseVector]) -> Vec<Vec<(u32, u32)>> {
    qs.iter()
        .map(|q| {
            let resp = index.search(&SearchRequest::query(q.clone())).unwrap();
            let mut hits: Vec<(u32, u32)> = resp
                .hits()
                .iter()
                .map(|h| (h.index, h.distance.to_bits()))
                .collect();
            hits.sort_unstable();
            hits
        })
        .collect()
}

#[test]
fn sharded_recovery_survives_sampled_power_cuts() {
    let _g = FAIL_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ThreadPool::new(1);
    let vs = vectors(120, 23);

    let dir = tempdir("crash-shard-count");
    let index = setup_sharded(&dir);
    fail::arm(i64::MAX);
    run_sharded_script(&index, &vs);
    drop(index);
    fail::disarm();
    let total = fail::ops_used();
    let _ = fs::remove_dir_all(&dir);
    assert!(total > 60, "sharded script too small: {total} ops");

    let step = (total / 12).max(1);
    for k in (0..=total).step_by(step as usize) {
        let dir = tempdir("crash-shard-k");
        let index = setup_sharded(&dir);
        fail::arm(k as i64);
        run_sharded_script(&index, &vs);
        drop(index);
        fail::disarm();

        let back = ShardedIndex::recover_from(&dir)
            .unwrap_or_else(|e| panic!("sharded cut after op {k}: recovery failed: {e}"));
        let t = back.len();
        assert!(t <= vs.len());

        // The flattened snapshot exposes exactly what survived: rows must
        // be the global ingest prefix, tombstones a subset of the issued
        // deletes.
        let snap = back.snapshot();
        assert_eq!(
            snap.vectors,
            &vs[..t],
            "sharded cut after op {k}: recovered rows are not a global prefix"
        );
        let mut tombstones: Vec<u32> = snap.deleted.iter().chain(&snap.purged).copied().collect();
        tombstones.sort_unstable();
        tombstones.dedup();
        for id in &tombstones {
            assert!(
                SHARDED_DELETES.contains(id),
                "sharded cut after op {k}: phantom tombstone {id}"
            );
        }

        // Sharded ≡ single engine over the same rows, recovered or not.
        let scratch = scratch_engine(&vs[..t], &tombstones, &pool);
        assert_eq!(
            sharded_answers(&back, &vs),
            engine_answers(&scratch, &vs),
            "sharded cut after op {k}: answers diverge from a from-scratch build"
        );
        drop(back);
        let _ = fs::remove_dir_all(&dir);
    }
}
