//! Integration: the multi-node cluster must answer exactly like one big
//! engine over the same data, and the rolling insert window must retire
//! precisely the oldest window.

use plsh::cluster::{Cluster, ClusterConfig};
use plsh::core::{Engine, EngineConfig, PlshParams};
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, SyntheticCorpus};

fn params(dim: u32) -> PlshParams {
    PlshParams::builder(dim)
        .k(8)
        .m(10)
        .radius(0.9)
        .seed(31)
        .build()
        .unwrap()
}

#[test]
fn cluster_equals_single_engine() {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 3_000,
        vocab_size: 4_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.25,
        seed: 8,
    });
    let pool = ThreadPool::new(2);

    let single = Engine::new(
        EngineConfig::new(params(corpus.dim()), corpus.len()).manual_merge(),
        &pool,
    )
    .unwrap();
    single.insert_batch(corpus.vectors(), &pool).unwrap();
    single.merge_delta(&pool);

    let cluster = Cluster::new(
        ClusterConfig::new(
            EngineConfig::new(params(corpus.dim()), 500).manual_merge(),
            6,
            3,
        ),
        &pool,
    )
    .unwrap();
    let placed = cluster.insert_batch(corpus.vectors(), &pool).unwrap();
    cluster.merge_all(&pool);

    // Build the reverse map (node, local) -> original position.
    let queries: Vec<_> = (0..100u32).map(|i| corpus.vector(i * 29).clone()).collect();
    for q in &queries {
        let mut expect: Vec<u32> = single.query(q).iter().map(|h| h.index).collect();
        expect.sort_unstable();
        let mut got: Vec<u32> = cluster
            .query(q, &pool)
            .iter()
            .map(|h| {
                placed
                    .iter()
                    .position(|&(n, l)| n == h.node && l == h.index)
                    .expect("every cluster hit maps to an inserted point") as u32
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn rolling_window_retires_oldest_data_exactly() {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 3_600,
        vocab_size: 4_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.0,
        seed: 4,
    });
    let pool = ThreadPool::new(1);
    // 4 nodes x 600 capacity = 2400 total; stream 3600 points => the first
    // window (2 nodes = 1200 points) must be retired exactly once.
    let cluster = Cluster::new(
        ClusterConfig::new(EngineConfig::new(params(corpus.dim()), 600), 4, 2),
        &pool,
    )
    .unwrap();
    cluster.insert_batch(corpus.vectors(), &pool).unwrap();
    let stats = cluster.stats();
    assert_eq!(stats.retirements, 1);
    assert_eq!(stats.total_points, 2_400);

    // Oldest 1200 points are gone; everything else must be findable.
    for id in (0..1_200u32).step_by(97) {
        let hits = cluster.query(corpus.vector(id), &pool);
        assert!(
            !hits.iter().any(|h| h.distance < 1e-3),
            "retired point {id} still findable"
        );
    }
    for id in (1_200..3_600u32).step_by(97) {
        let hits = cluster.query(corpus.vector(id), &pool);
        assert!(
            hits.iter().any(|h| h.distance < 1e-3),
            "live point {id} not findable"
        );
    }
}

#[test]
fn window_semantics_track_arrival_order() {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        num_docs: 1_000,
        vocab_size: 4_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.0,
        seed: 6,
    });
    let pool = ThreadPool::new(1);
    let cluster = Cluster::new(
        ClusterConfig::new(EngineConfig::new(params(corpus.dim()), 100), 10, 2),
        &pool,
    )
    .unwrap();
    let placed = cluster.insert_batch(corpus.vectors(), &pool).unwrap();
    // Points i and i+1 alternate between the window's two nodes; windows
    // advance every 200 points.
    for (i, &(node, _)) in placed.iter().enumerate() {
        let window = i / 200;
        let expected_nodes = [(window * 2) as u32, (window * 2 + 1) as u32];
        assert!(
            expected_nodes.contains(&node),
            "point {i} landed on node {node}, expected {expected_nodes:?}"
        );
    }
}
