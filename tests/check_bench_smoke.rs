//! Smoke test: `scripts/check_bench.py` must keep validating the five
//! committed benchmark reports.
//!
//! The script is the single source of truth for what CI asserts about
//! `BENCH_query.json`, `BENCH_streaming.json`, `BENCH_cluster.json`,
//! `BENCH_recovery.json`, and `BENCH_soak.json` (it used to live inline
//! in `ci.yml`, where nothing exercised it before a workflow ran). This
//! test pins the contract down from `cargo test`: the script exists,
//! parses, and accepts the committed full-scale reports it ships with.

use std::path::Path;
use std::process::Command;

const REPORTS: [&str; 5] = [
    "BENCH_query.json",
    "BENCH_streaming.json",
    "BENCH_cluster.json",
    "BENCH_recovery.json",
    "BENCH_soak.json",
];

#[test]
fn check_bench_script_accepts_committed_reports() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let script = root.join("scripts/check_bench.py");
    assert!(script.is_file(), "scripts/check_bench.py is missing");
    for report in REPORTS {
        assert!(
            root.join(report).is_file(),
            "committed report {report} is missing"
        );
    }

    let output = match Command::new("python3")
        .arg(&script)
        .args(REPORTS)
        .current_dir(root)
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            // CI always has python3; a dev box without it skips rather
            // than failing the tier-1 suite on an unrelated toolchain.
            eprintln!("skipping: python3 not runnable here ({e})");
            return;
        }
    };
    assert!(
        output.status.success(),
        "check_bench.py rejected the committed reports:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("all 5 report(s) OK"),
        "unexpected script output:\n{stdout}"
    );
}

#[test]
fn check_bench_script_rejects_malformed_reports() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = std::env::temp_dir().join("plsh_check_bench_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("BENCH_bad.json");
    std::fs::write(&bad, "{\"experiment\": \"scaling\", \"scale\": \"quick\"}").unwrap();

    let output = match Command::new("python3")
        .arg(root.join("scripts/check_bench.py"))
        .arg(&bad)
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            eprintln!("skipping: python3 not runnable here ({e})");
            return;
        }
    };
    assert!(
        !output.status.success(),
        "a report missing required fields must be rejected"
    );
}
