//! Integration: the full text pipeline (tokenize → vocabulary → IDF →
//! vectorize) feeding the PLSH engine, queried with raw text snippets —
//! the workflow of the paper's Twitter search application.

use plsh::core::{Engine, EngineConfig, PlshParams};
use plsh::parallel::ThreadPool;
use plsh::text::{CorpusBuilder, Tokenizer};

/// A small corpus with obvious near-duplicate clusters.
fn docs() -> Vec<String> {
    let templates = [
        "severe weather warning issued for the northern coast region",
        "football club announces record signing ahead of new season",
        "scientists discover unusual exoplanet orbiting distant star",
        "city council approves budget for public transport expansion",
        "chef shares award winning pasta recipe with secret ingredient",
    ];
    let mut out = Vec::new();
    for (i, t) in templates.iter().enumerate() {
        out.push(t.to_string());
        // Two near-duplicates per template: word order shuffled / suffixed.
        out.push(format!("{t} today"));
        out.push(format!("update {t}"));
        // Plus unrelated noise documents.
        out.push(format!(
            "unrelated filler text number {i} about nothing in particular topic{i}"
        ));
    }
    out
}

#[test]
fn text_snippets_find_their_cluster() {
    let docs = docs();
    let mut builder = CorpusBuilder::new(Tokenizer::default());
    for d in &docs {
        builder.add_document(d);
    }
    let vectorizer = builder.finish();

    let params = PlshParams::builder(vectorizer.dim())
        .k(6)
        .m(8)
        .radius(0.9)
        .seed(12)
        .build()
        .unwrap();
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::new(params, docs.len()), &pool).unwrap();
    for d in &docs {
        let v = vectorizer.vectorize(d).expect("corpus documents vectorize");
        engine.insert(v, &pool).unwrap();
    }
    engine.merge_delta(&pool);

    // Querying with each original template must surface the template and
    // its two near-duplicates, and nothing from other clusters.
    for cluster in 0..5usize {
        let base = cluster * 4;
        let q = vectorizer.vectorize(&docs[base]).unwrap();
        let hits = engine.query(&q);
        let ids: Vec<usize> = hits.iter().map(|h| h.index as usize).collect();
        for expect in [base, base + 1, base + 2] {
            assert!(
                ids.contains(&expect),
                "cluster {cluster} missing doc {expect}"
            );
        }
        for id in &ids {
            assert!(
                (base..base + 3).contains(id),
                "cluster {cluster} leaked doc {id}"
            );
        }
    }
}

#[test]
fn out_of_vocabulary_queries_are_rejected_before_the_engine() {
    let docs = docs();
    let mut builder = CorpusBuilder::new(Tokenizer::default());
    for d in &docs {
        builder.add_document(d);
    }
    let vectorizer = builder.finish();
    // The paper's "0-length query" case: nothing here is in vocabulary.
    assert!(vectorizer.vectorize("xylophone quux zzyzx").is_none());
    assert!(vectorizer.vectorize("!!! 123").is_none());
}

#[test]
fn idf_prefers_distinctive_matches() {
    let docs = docs();
    let mut builder = CorpusBuilder::new(Tokenizer::default());
    for d in &docs {
        builder.add_document(d);
    }
    let vectorizer = builder.finish();
    let params = PlshParams::builder(vectorizer.dim())
        .k(6)
        .m(8)
        .radius(1.2)
        .seed(12)
        .build()
        .unwrap();
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::new(params, docs.len()), &pool).unwrap();
    for d in &docs {
        engine
            .insert(vectorizer.vectorize(d).unwrap(), &pool)
            .unwrap();
    }
    engine.merge_delta(&pool);

    // "exoplanet" is rare; a query containing it plus common words must
    // rank the exoplanet document first.
    let q = vectorizer
        .vectorize("new exoplanet discovered today")
        .unwrap();
    let mut hits = engine.query(&q);
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    assert!(!hits.is_empty());
    let best = hits[0].index as usize;
    assert!(
        docs[best].contains("exoplanet"),
        "best match {:?} should be the exoplanet story",
        docs[best]
    );
}
