//! Merge-equivalence property: any interleaving of insert / seal / merge /
//! delete must answer every query identically to a from-scratch build over
//! the same rows — the generation boundaries, merge timing, and purge
//! schedule are invisible in answers.
//!
//! Plus a threaded smoke test: queries racing a live ingest thread must
//! only ever observe consistent epochs (`visible = static + sealed`, no
//! half-merged state, no lost points behind the insert watermark).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use plsh::core::streaming::StreamingEngine;
use plsh::core::{Engine, EngineConfig, PlshParams, SparseVector};
use plsh::parallel::ThreadPool;

const DIM: u32 = 48;

fn params(seed: u64) -> PlshParams {
    PlshParams::builder(DIM)
        .k(6)
        .m(6)
        .radius(0.9)
        .seed(seed)
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of 1..6 vectors.
    InsertBatch(Vec<Vec<(u32, f32)>>),
    /// Force-seal the open generation.
    Seal,
    /// Merge all sealed generations (purging tombstones).
    Merge,
    /// Tombstone the i-th inserted point (mod current count).
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pair = (0..DIM, 1u32..100).prop_map(|(d, v)| (d, v as f32 / 10.0));
    let vec_strategy = proptest::collection::vec(pair, 1..5);
    let batch_strategy = proptest::collection::vec(vec_strategy, 1..6);
    prop_oneof![
        5 => batch_strategy.prop_map(Op::InsertBatch),
        1 => Just(Op::Seal),
        1 => Just(Op::Merge),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Delete(i.index(1000))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn interleavings_answer_like_a_from_scratch_build(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let pool = ThreadPool::new(1);
        // seal_min_points > 1 exercises open-generation coalescing: some
        // batches stay buffered until a later batch (or explicit seal)
        // publishes them.
        let live = Engine::new(
            EngineConfig::new(params(31), 4096)
                .manual_merge()
                .with_seal_min_points(4),
            &pool,
        )
        .unwrap();

        let mut vectors: Vec<SparseVector> = Vec::new();
        let mut deleted: Vec<u32> = Vec::new();
        for op in &ops {
            match op {
                Op::InsertBatch(rows) => {
                    let vs: Vec<SparseVector> = rows
                        .iter()
                        .map(|pairs| SparseVector::unit(pairs.clone()).unwrap())
                        .collect();
                    live.insert_batch(&vs, &pool).unwrap();
                    vectors.extend(vs);
                }
                Op::Seal => {
                    live.seal();
                }
                Op::Merge => {
                    live.merge_delta(&pool);
                }
                Op::Delete(i) => {
                    if !vectors.is_empty() {
                        let id = (*i % vectors.len()) as u32;
                        let newly = live.delete(id);
                        prop_assert_eq!(newly, !deleted.contains(&id));
                        if newly {
                            deleted.push(id);
                        }
                    }
                }
            }
        }
        // Make the coalesced tail visible, then compare against a
        // from-scratch build: one bulk insert, one merge, same deletes.
        live.seal();
        let scratch = Engine::new(
            EngineConfig::new(params(31), 4096).manual_merge(),
            &pool,
        )
        .unwrap();
        if !vectors.is_empty() {
            scratch.insert_batch(&vectors, &pool).unwrap();
        }
        scratch.merge_delta(&pool);
        for &id in &deleted {
            scratch.delete(id);
        }

        prop_assert_eq!(live.len(), scratch.len());
        for (i, v) in vectors.iter().enumerate() {
            prop_assert_eq!(live.is_deleted(i as u32), scratch.is_deleted(i as u32));
            let mut a: Vec<u32> = live.query(v).iter().map(|h| h.index).collect();
            let mut b: Vec<u32> = scratch.query(v).iter().map(|h| h.index).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "answers diverged for point {}", i);
        }
    }
}

#[test]
fn concurrent_queries_see_only_consistent_epochs() {
    let pool = ThreadPool::new(2);
    let n = 3000usize;
    let engine =
        StreamingEngine::new(EngineConfig::new(params(77), n).with_eta(0.04), pool).unwrap();

    // Deterministic corpus: every point is its own nearest neighbor.
    let vectors: Vec<SparseVector> = (0..n as u32)
        .map(|i| {
            SparseVector::unit(vec![
                (i % DIM, 1.0),
                ((i * 7 + 1) % DIM, 0.4 + (i % 5) as f32 * 0.1),
            ])
            .unwrap()
        })
        .collect();

    // The watermark only advances after insert_batch has returned, so
    // everything at or below it must be sealed and findable.
    let watermark = Arc::new(AtomicUsize::new(0));
    let writer = {
        let engine = engine.clone();
        let vectors = vectors.clone();
        let watermark = watermark.clone();
        std::thread::spawn(move || {
            for (c, chunk) in vectors.chunks(150).enumerate() {
                engine.insert_batch(chunk).unwrap();
                watermark.fetch_add(chunk.len(), Ordering::Release);
                // Sprinkle deletes behind the watermark.
                if c % 3 == 2 {
                    engine.delete((c * 31 % (c * 150)) as u32);
                }
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|t| {
            let engine = engine.clone();
            let vectors = vectors.clone();
            let watermark = watermark.clone();
            std::thread::spawn(move || {
                let mut checked = 0usize;
                let mut last_generation = 0u64;
                while checked < 300 {
                    // 1) epochs are never half-merged and never go back.
                    let info = engine.epoch_info();
                    assert_eq!(
                        info.visible_points,
                        info.static_points + info.sealed_points,
                        "half-merged epoch observed"
                    );
                    assert!(info.generation >= last_generation);
                    last_generation = info.generation;

                    // 2) sealed points are never lost, whatever merge or
                    //    seal races this query.
                    let visible = watermark.load(Ordering::Acquire);
                    if visible == 0 {
                        continue;
                    }
                    let probe = (t * 61 + checked * 17) % visible;
                    if engine.engine().is_deleted(probe as u32) {
                        checked += 1;
                        continue;
                    }
                    let hits = engine.query(&vectors[probe]);
                    if !hits.iter().any(|h| h.index == probe as u32) {
                        // The writer may have tombstoned the probe between
                        // our check and the query; anything else is a loss.
                        assert!(
                            engine.engine().is_deleted(probe as u32),
                            "sealed point {probe} lost mid-ingest"
                        );
                    }
                    // 3) answers only ever reference assigned ids.
                    assert!(hits.iter().all(|h| (h.index as usize) < engine.len()));
                    checked += 1;
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    engine.wait_for_merge();
    engine.merge_now();
    assert_eq!(engine.len(), n);
    assert!(
        engine.stats().merges >= 1,
        "auto-merge must have fired in the background"
    );
    assert_eq!(engine.epoch_info().sealed_points, 0);
    // Post-quiesce: all live points findable, all deleted points absent.
    for probe in (0..n).step_by(123) {
        let hits = engine.query(&vectors[probe]);
        if engine.engine().is_deleted(probe as u32) {
            assert!(hits.iter().all(|h| h.index != probe as u32));
        } else {
            assert!(hits.iter().any(|h| h.index == probe as u32));
        }
    }
}

/// The paced (stepped) background merge — tiny slice budgets, yielding to
/// live queries between slices — publishes an epoch that answers
/// bit-identically to a from-scratch monolithic build over the same rows.
#[test]
fn paced_background_merge_answers_identically() {
    use plsh::core::MergePacing;
    use std::time::Duration;

    let n = 1200usize;
    // Slices far smaller than the table/bucket counts force the stepper
    // through many hundreds of pressure checks; the sleep keeps it
    // yielding whenever our queries are in flight.
    let pacing = MergePacing {
        step_buckets: 8,
        step_rows: 16,
        yield_sleep: Duration::from_micros(20),
    };
    let engine = StreamingEngine::new(
        EngineConfig::new(params(91), n)
            .manual_merge()
            .with_merge_pacing(pacing),
        ThreadPool::new(2),
    )
    .unwrap();

    let vectors: Vec<SparseVector> = (0..n as u32)
        .map(|i| {
            SparseVector::unit(vec![
                (i % DIM, 1.0),
                ((i * 11 + 3) % DIM, 0.3 + (i % 7) as f32 * 0.1),
            ])
            .unwrap()
        })
        .collect();
    for chunk in vectors.chunks(200) {
        engine.insert_batch(chunk).unwrap();
    }

    // Race queries against the stepped merge until it publishes.
    engine.merge_in_background();
    let mut probed = 0usize;
    while engine.merge_in_flight() {
        let probe = probed * 37 % n;
        assert!(
            engine
                .query(&vectors[probe])
                .iter()
                .any(|h| h.index == probe as u32),
            "point {probe} lost mid-merge"
        );
        probed += 1;
    }
    engine.wait_for_merge();
    assert_eq!(engine.engine().static_len(), n, "paced merge must publish");

    // Bit-identical to a monolithic from-scratch build.
    let pool = ThreadPool::new(1);
    let scratch = Engine::new(EngineConfig::new(params(91), n).manual_merge(), &pool).unwrap();
    scratch.insert_batch(&vectors, &pool).unwrap();
    scratch.merge_delta(&pool);
    for (i, v) in vectors.iter().enumerate() {
        let mut a: Vec<(u32, u32)> = engine
            .query(v)
            .iter()
            .map(|h| (h.index, h.distance.to_bits()))
            .collect();
        let mut b: Vec<(u32, u32)> = scratch
            .query(v)
            .iter()
            .map(|h| (h.index, h.distance.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "answers diverged for point {i}");
    }
}
