//! Backend equivalence: the whole point of the unified search API is that
//! [`Engine`], [`StreamingEngine`] (mid-ingest, merge in flight), a 1-node
//! [`Cluster`], and a [`ShardedIndex`] at several shard counts answer the
//! *exact same* [`SearchRequest`] with the *exact same* answer set — same
//! ids, same distances, bit for bit — regardless of how their data is
//! segmented across static tables, sealed delta generations, shards, or
//! in-flight background merges.
//!
//! Budgeted requests ([`SearchRequest::with_max_candidates`]) compare
//! bit-identically across the single-node backends; a sharded backend
//! divides the budget across its shards, so its answers are checked to be
//! budget-*honoring* instead — every hit a true hit and the aggregate
//! candidates examined within the global budget — since each shard
//! truncates its own ascending-id candidate prefix.

use plsh::cluster::{Cluster, ClusterConfig};
use plsh::core::engine::{Engine, EngineConfig};
use plsh::core::streaming::StreamingEngine;
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, QuerySet, SyntheticCorpus};
use plsh::{PlshParams, QueryStrategy, SearchBackend, SearchRequest, ShardedIndex};

const N: usize = 600;

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(CorpusConfig {
        num_docs: N,
        vocab_size: 2_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.25,
        seed: 424,
    })
}

fn params(dim: u32) -> PlshParams {
    PlshParams::builder(dim)
        .k(8)
        .m(8)
        .radius(0.9)
        .seed(17)
        .build()
        .unwrap()
}

/// Canonical answer form: per query, the sorted `(index, distance-bits)`
/// set. Node is asserted to be 0 everywhere (single node), so identical
/// answer sets really are identical.
fn answers<B: SearchBackend>(
    backend: &B,
    req: &SearchRequest,
    pool: &ThreadPool,
) -> Vec<Vec<(u32, u32)>> {
    let resp = backend.search(req, pool).expect("valid request");
    assert_eq!(resp.results.len(), req.queries().len());
    resp.results
        .iter()
        .map(|hits| {
            let mut set: Vec<(u32, u32)> = hits
                .iter()
                .map(|h| {
                    assert_eq!(h.node, 0, "every backend here is one node");
                    (h.index, h.distance.to_bits())
                })
                .collect();
            set.sort_unstable();
            set
        })
        .collect()
}

/// Canonical answer form for sharded backends: indexes are *global* ids
/// (bit-identical to the single engine's), while `node` carries the
/// owning-shard attribution and is therefore ignored here — after
/// checking it stays in range.
fn sharded_answers(
    backend: &ShardedIndex,
    req: &SearchRequest,
    pool: &ThreadPool,
) -> Vec<Vec<(u32, u32)>> {
    let resp = SearchBackend::search(backend, req, pool).expect("valid request");
    assert_eq!(resp.results.len(), req.queries().len());
    resp.results
        .iter()
        .map(|hits| {
            let mut set: Vec<(u32, u32)> = hits
                .iter()
                .map(|h| {
                    assert!(
                        (h.node as usize) < backend.num_shards(),
                        "hit attributed to nonexistent shard {}",
                        h.node
                    );
                    (h.index, h.distance.to_bits())
                })
                .collect();
            set.sort_unstable();
            set
        })
        .collect()
}

#[test]
fn all_backends_answer_identically() {
    let corpus = corpus();
    let params = params(corpus.dim());
    let pool = ThreadPool::new(2);

    // Engine: mixed static + sealed-delta segmentation.
    let engine = Engine::new(EngineConfig::new(params.clone(), N).manual_merge(), &pool).unwrap();
    engine
        .insert_batch(&corpus.vectors()[..400], &pool)
        .unwrap();
    engine.merge_delta(&pool);
    engine
        .insert_batch(&corpus.vectors()[400..], &pool)
        .unwrap();

    // StreamingEngine: chunked ingest with a background merge kicked off
    // and *not* awaited — requests run while the merge may be anywhere
    // between building and published.
    let streaming = StreamingEngine::new(
        EngineConfig::new(params.clone(), N)
            .with_eta(0.95)
            .manual_merge(),
        ThreadPool::new(2),
    )
    .unwrap();
    for chunk in corpus.vectors().chunks(64) {
        streaming.insert_batch(chunk).unwrap();
    }
    streaming.merge_in_background();

    // Cluster: one node, all data still in delta generations.
    let cluster = {
        let c = Cluster::new(
            ClusterConfig::new(EngineConfig::new(params.clone(), N).manual_merge(), 1, 1),
            &pool,
        )
        .unwrap();
        c.insert_batch(corpus.vectors(), &pool).unwrap();
        c
    };

    // ShardedIndexes at several shard counts, *mid-ingest*: everything
    // routed and visible, then background merges kicked off on every
    // shard and *not* awaited — requests run while merges are anywhere
    // between building and published on multiple shards at once.
    let sharded: Vec<ShardedIndex> = [2usize, 3, 5]
        .into_iter()
        .map(|shards| {
            let s = ShardedIndex::builder(
                EngineConfig::new(params.clone(), N)
                    .with_eta(0.95)
                    .manual_merge(),
            )
            .shards(shards)
            .threads(2)
            .build()
            .unwrap();
            for chunk in corpus.vectors().chunks(64) {
                s.insert_batch(chunk).unwrap();
            }
            s.flush().unwrap();
            assert_eq!(
                s.merge_all_in_background(),
                shards,
                "every shard must have sealed data to merge"
            );
            s
        })
        .collect();

    let queries = QuerySet::sample_from_corpus(&corpus, 60, 9);
    let qs = queries.queries().to_vec();
    // (request, budgeted): budgeted requests divide the candidate budget
    // across shards, so sharded backends are held to budget-honoring
    // assertions instead of bit-identity.
    let requests = [
        // The batched SIMD pipeline (the default door).
        (SearchRequest::batch(qs.clone()), false),
        // Per-query pipeline with the weakest strategy level.
        (
            SearchRequest::batch(qs.clone())
                .per_query_pipeline()
                .with_strategy(QueryStrategy::unoptimized()),
            false,
        ),
        // Approximate k-NN with a global tie-break.
        (SearchRequest::batch(qs.clone()).top_k(7), false),
        // Per-request radius override.
        (SearchRequest::batch(qs.clone()).with_radius(1.2), false),
        // Bounded candidate budget: the visited prefix is the ascending-id
        // candidate order at *every* strategy level, so it is
        // segmentation-independent across single-node backends (and
        // per-shard on sharded ones — hence the flag).
        (
            SearchRequest::batch(qs.clone()).with_max_candidates(50),
            true,
        ),
        (
            SearchRequest::batch(qs.clone())
                .with_max_candidates(50)
                .with_strategy(QueryStrategy::with_sparse_dot()),
            true,
        ),
        (
            SearchRequest::batch(qs.clone())
                .with_max_candidates(50)
                .with_strategy(QueryStrategy::unoptimized()),
            true,
        ),
        // Stats + profiling switches must not change answers.
        (SearchRequest::batch(qs.clone()).with_profiling(), false),
        (SearchRequest::query(qs[0].clone()).with_stats(), false),
    ];

    let compare_all = |label: &str| {
        // The unbudgeted radius answer set: the ground truth budgeted
        // sharded hits must be a subset of.
        let full = answers(&engine, &requests[0].0, &pool);
        for (ri, (req, budgeted)) in requests.iter().enumerate() {
            let a = answers(&engine, req, &pool);
            let b = answers(&streaming, req, &pool);
            let c = answers(&cluster, req, &pool);
            assert_eq!(
                a, b,
                "{label}: Engine vs StreamingEngine diverged on request {ri}"
            );
            assert_eq!(a, c, "{label}: Engine vs Cluster diverged on request {ri}");
            if *budgeted {
                // The budget is divided across shards (floored at one per
                // shard), so a sharded backend's *selection* differs from
                // a single engine's; what must hold is that the budget is
                // honored globally: every hit is a true radius hit, and
                // the aggregate candidates examined stay within the
                // global budget.
                let budget = req.max_candidates().expect("budgeted request") as u64;
                for s in &sharded {
                    let got = sharded_answers(s, req, &pool);
                    for (qi, hits) in got.iter().enumerate() {
                        for hit in hits {
                            assert!(
                                full[qi].contains(hit),
                                "{label}: {}-shard budgeted hit {hit:?} for query {qi} \
                                 is not a true radius hit (request {ri})",
                                s.num_shards()
                            );
                        }
                    }
                    let resp = SearchBackend::search(s, &req.clone().with_stats(), &pool).unwrap();
                    let totals = resp.stats.expect("asked for stats").totals;
                    let cap = budget * req.queries().len() as u64;
                    assert!(
                        totals.distance_computations <= cap,
                        "{label}: {}-shard backend examined {} candidates, \
                         budget allows {cap} (request {ri})",
                        s.num_shards(),
                        totals.distance_computations
                    );
                }
                continue;
            }
            for s in &sharded {
                assert_eq!(
                    a,
                    sharded_answers(s, req, &pool),
                    "{label}: Engine vs {}-shard ShardedIndex diverged on request {ri}",
                    s.num_shards()
                );
            }
        }
    };
    compare_all("mid-ingest");

    // Re-run after everything quiesces into static tables: answers are
    // again identical, and identical to their own pre-merge selves.
    let pre_merge = answers(&engine, &requests[0].0, &pool);
    streaming.wait_for_merge();
    streaming.merge_now();
    engine.merge_delta(&pool);
    cluster.merge_all(&pool);
    for s in &sharded {
        s.quiesce().unwrap();
        assert_eq!(s.shard(0).engine().delta_len(), 0);
    }
    compare_all("post-merge");
    assert_eq!(
        pre_merge,
        answers(&engine, &requests[0].0, &pool),
        "merging must never change answers"
    );
}

#[test]
fn malformed_requests_error_on_every_backend() {
    let corpus = corpus();
    let params = params(corpus.dim());
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::new(params.clone(), N), &pool).unwrap();
    let streaming =
        StreamingEngine::new(EngineConfig::new(params.clone(), N), ThreadPool::new(1)).unwrap();
    let cluster = Cluster::new(
        ClusterConfig::new(EngineConfig::new(params.clone(), N), 1, 1),
        &pool,
    )
    .unwrap();

    let sharded = ShardedIndex::builder(EngineConfig::new(params, N))
        .shards(2)
        .build()
        .unwrap();

    let oob = plsh::SparseVector::unit(vec![(corpus.dim(), 1.0)]).unwrap();
    let req = SearchRequest::query(oob);
    assert!(SearchBackend::search(&engine, &req, &pool).is_err());
    assert!(SearchBackend::search(&streaming, &req, &pool).is_err());
    assert!(SearchBackend::search(&cluster, &req, &pool).is_err());
    assert!(SearchBackend::search(&sharded, &req, &pool).is_err());
}
