//! Backend equivalence: the whole point of the unified search API is that
//! [`Engine`], [`StreamingEngine`] (mid-ingest, merge in flight), and a
//! 1-node [`Cluster`] answer the *exact same* [`SearchRequest`] with the
//! *exact same* answer set — same ids, same distances, bit for bit —
//! regardless of how their data is segmented across static tables, sealed
//! delta generations, or an in-flight background merge.

use plsh::cluster::{Cluster, ClusterConfig};
use plsh::core::engine::{Engine, EngineConfig};
use plsh::core::streaming::StreamingEngine;
use plsh::parallel::ThreadPool;
use plsh::workload::{CorpusConfig, QuerySet, SyntheticCorpus};
use plsh::{PlshParams, QueryStrategy, SearchBackend, SearchRequest};

const N: usize = 600;

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(CorpusConfig {
        num_docs: N,
        vocab_size: 2_000,
        mean_words: 7.2,
        zipf_exponent: 1.0,
        duplicate_fraction: 0.25,
        seed: 424,
    })
}

fn params(dim: u32) -> PlshParams {
    PlshParams::builder(dim)
        .k(8)
        .m(8)
        .radius(0.9)
        .seed(17)
        .build()
        .unwrap()
}

/// Canonical answer form: per query, the sorted `(index, distance-bits)`
/// set. Node is asserted to be 0 everywhere (single node), so identical
/// answer sets really are identical.
fn answers<B: SearchBackend>(
    backend: &B,
    req: &SearchRequest,
    pool: &ThreadPool,
) -> Vec<Vec<(u32, u32)>> {
    let resp = backend.search(req, pool).expect("valid request");
    assert_eq!(resp.results.len(), req.queries().len());
    resp.results
        .iter()
        .map(|hits| {
            let mut set: Vec<(u32, u32)> = hits
                .iter()
                .map(|h| {
                    assert_eq!(h.node, 0, "every backend here is one node");
                    (h.index, h.distance.to_bits())
                })
                .collect();
            set.sort_unstable();
            set
        })
        .collect()
}

#[test]
fn all_backends_answer_identically() {
    let corpus = corpus();
    let params = params(corpus.dim());
    let pool = ThreadPool::new(2);

    // Engine: mixed static + sealed-delta segmentation.
    let engine =
        Engine::new(EngineConfig::new(params.clone(), N).manual_merge(), &pool).unwrap();
    engine.insert_batch(&corpus.vectors()[..400], &pool).unwrap();
    engine.merge_delta(&pool);
    engine.insert_batch(&corpus.vectors()[400..], &pool).unwrap();

    // StreamingEngine: chunked ingest with a background merge kicked off
    // and *not* awaited — requests run while the merge may be anywhere
    // between building and published.
    let streaming = StreamingEngine::new(
        EngineConfig::new(params.clone(), N).with_eta(0.95).manual_merge(),
        ThreadPool::new(2),
    )
    .unwrap();
    for chunk in corpus.vectors().chunks(64) {
        streaming.insert_batch(chunk).unwrap();
    }
    streaming.merge_in_background();

    // Cluster: one node, all data still in delta generations.
    let cluster = {
        let mut c = Cluster::new(
            ClusterConfig::new(EngineConfig::new(params, N).manual_merge(), 1, 1),
            &pool,
        )
        .unwrap();
        c.insert_batch(corpus.vectors(), &pool).unwrap();
        c
    };

    let queries = QuerySet::sample_from_corpus(&corpus, 60, 9);
    let qs = queries.queries().to_vec();
    let requests = [
        // The batched SIMD pipeline (the default door).
        SearchRequest::batch(qs.clone()),
        // Per-query pipeline with the weakest strategy level.
        SearchRequest::batch(qs.clone())
            .per_query_pipeline()
            .with_strategy(QueryStrategy::unoptimized()),
        // Approximate k-NN with a global tie-break.
        SearchRequest::batch(qs.clone()).top_k(7),
        // Per-request radius override.
        SearchRequest::batch(qs.clone()).with_radius(1.2),
        // Bounded candidate budget: the visited prefix is the ascending-id
        // candidate order at *every* strategy level, so it is
        // segmentation-independent too.
        SearchRequest::batch(qs.clone()).with_max_candidates(50),
        SearchRequest::batch(qs.clone())
            .with_max_candidates(50)
            .with_strategy(QueryStrategy::with_sparse_dot()),
        SearchRequest::batch(qs.clone())
            .with_max_candidates(50)
            .with_strategy(QueryStrategy::unoptimized()),
        // Stats + profiling switches must not change answers.
        SearchRequest::batch(qs.clone()).with_profiling(),
        SearchRequest::query(qs[0].clone()).with_stats(),
    ];

    for (ri, req) in requests.iter().enumerate() {
        let a = answers(&engine, req, &pool);
        let b = answers(&streaming, req, &pool);
        let c = answers(&cluster, req, &pool);
        assert_eq!(a, b, "Engine vs StreamingEngine diverged on request {ri}");
        assert_eq!(a, c, "Engine vs Cluster diverged on request {ri}");
    }

    // Re-run after everything quiesces into static tables: answers are
    // again identical, and identical to their own pre-merge selves.
    let pre_merge = answers(&engine, &requests[0], &pool);
    streaming.wait_for_merge();
    streaming.merge_now();
    engine.merge_delta(&pool);
    let mut cluster = cluster;
    cluster.merge_all(&pool);
    for (ri, req) in requests.iter().enumerate() {
        let a = answers(&engine, req, &pool);
        assert_eq!(
            a,
            answers(&streaming, req, &pool),
            "post-merge Engine vs StreamingEngine diverged on request {ri}"
        );
        assert_eq!(
            a,
            answers(&cluster, req, &pool),
            "post-merge Engine vs Cluster diverged on request {ri}"
        );
    }
    assert_eq!(
        pre_merge,
        answers(&engine, &requests[0], &pool),
        "merging must never change answers"
    );
}

#[test]
fn malformed_requests_error_on_every_backend() {
    let corpus = corpus();
    let params = params(corpus.dim());
    let pool = ThreadPool::new(1);
    let engine = Engine::new(EngineConfig::new(params.clone(), N), &pool).unwrap();
    let streaming =
        StreamingEngine::new(EngineConfig::new(params.clone(), N), ThreadPool::new(1)).unwrap();
    let cluster = Cluster::new(
        ClusterConfig::new(EngineConfig::new(params, N), 1, 1),
        &pool,
    )
    .unwrap();

    let oob = plsh::SparseVector::unit(vec![(corpus.dim(), 1.0)]).unwrap();
    let req = SearchRequest::query(oob);
    assert!(SearchBackend::search(&engine, &req, &pool).is_err());
    assert!(SearchBackend::search(&streaming, &req, &pool).is_err());
    assert!(SearchBackend::search(&cluster, &req, &pool).is_err());
}
