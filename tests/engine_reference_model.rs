//! Property-based integration test: a randomized sequence of engine
//! operations (insert / delete / merge / query) checked against a naive
//! reference model.
//!
//! Two checks hold deterministically for LSH with exact re-ranking:
//! * soundness — every reported hit is a live in-radius point, with the
//!   exact distance;
//! * zero-distance completeness — an indexed point queried by its own
//!   vector is always reported (identical vectors share every hash).

use proptest::prelude::*;

use plsh::core::{Engine, EngineConfig, PlshParams, SparseVector};
use plsh::parallel::ThreadPool;

const DIM: u32 = 64;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<(u32, f32)>),
    Delete(usize),
    Merge,
    QueryExisting(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pair = (0..DIM, 1u32..100).prop_map(|(d, v)| (d, v as f32 / 10.0));
    let vec_strategy = proptest::collection::vec(pair, 1..6);
    prop_oneof![
        4 => vec_strategy.prop_map(Op::Insert),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::Delete(i.index(1000))),
        1 => Just(Op::Merge),
        3 => any::<prop::sample::Index>().prop_map(|i| Op::QueryExisting(i.index(1000))),
    ]
}

/// Naive reference: the live set plus exhaustive distance checks.
struct Reference {
    vectors: Vec<SparseVector>,
    deleted: Vec<bool>,
}

impl Reference {
    fn new() -> Self {
        Self {
            vectors: Vec::new(),
            deleted: Vec::new(),
        }
    }

    fn in_radius(&self, q: &SparseVector, r: f32) -> Vec<u32> {
        self.vectors
            .iter()
            .enumerate()
            .filter(|&(i, v)| !self.deleted[i] && q.angular_distance(v) <= r)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn engine_agrees_with_reference(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let params = PlshParams::builder(DIM)
            .k(6)
            .m(6)
            .radius(0.9)
            .seed(21)
            .build()
            .unwrap();
        let pool = ThreadPool::new(1);
        let engine = Engine::new(
            EngineConfig::new(params, 4096).with_eta(0.02),
            &pool,
        )
        .unwrap();
        let mut reference = Reference::new();

        for op in ops {
            match op {
                Op::Insert(pairs) => {
                    let Ok(v) = SparseVector::unit(pairs) else { continue };
                    let id = engine.insert(v.clone(), &pool).unwrap();
                    prop_assert_eq!(id as usize, reference.vectors.len());
                    reference.vectors.push(v);
                    reference.deleted.push(false);
                }
                Op::Delete(i) => {
                    if reference.vectors.is_empty() {
                        continue;
                    }
                    let id = (i % reference.vectors.len()) as u32;
                    let newly = engine.delete(id);
                    prop_assert_eq!(newly, !reference.deleted[id as usize]);
                    reference.deleted[id as usize] = true;
                }
                Op::Merge => {
                    engine.merge_delta(&pool);
                    prop_assert_eq!(engine.delta_len(), 0);
                    prop_assert_eq!(engine.static_len(), reference.vectors.len());
                }
                Op::QueryExisting(i) => {
                    if reference.vectors.is_empty() {
                        continue;
                    }
                    let id = (i % reference.vectors.len()) as u32;
                    let q = reference.vectors[id as usize].clone();
                    let hits = engine.query(&q);
                    let truth = reference.in_radius(&q, 0.9);
                    // Soundness: every hit is a live in-radius point.
                    for h in &hits {
                        prop_assert!(truth.contains(&h.index),
                            "hit {} not in reference answer", h.index);
                        let exact = q.angular_distance(&reference.vectors[h.index as usize]);
                        prop_assert!((exact - h.distance).abs() < 1e-4);
                    }
                    // Zero-distance completeness.
                    if !reference.deleted[id as usize] {
                        prop_assert!(hits.iter().any(|h| h.index == id),
                            "self-query for {id} missed its own point");
                    }
                }
            }
        }
    }
}
