//! Smoke test: every example program must keep building.
//!
//! `cargo test` builds examples as part of its default target selection,
//! but only when invoked straight from the root package; this test pins
//! the guarantee down explicitly (and from any member directory) so an
//! example rotting out of the API can never slip through a green run.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 8] = [
    "durable_restart",
    "first_story_detection",
    "param_tuning",
    "quickstart",
    "save_restore",
    "serve",
    "sharded_scaling",
    "streaming_firehose",
];

#[test]
fn all_examples_build() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let source = Path::new(manifest_dir)
            .join("examples")
            .join(format!("{example}.rs"));
        assert!(source.is_file(), "example source {source:?} is missing");
    }

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["build", "--examples"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to invoke cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
